// §3.2.3 scaling: "Scaling this approach would require extending the size
// and line ID segment to support the possible larger request packets in the
// future HMC generations." These tests exercise the coalescer with a
// hypothetical 512 B-block HMC (3-bit size/line-ID equivalents) and other
// off-default platform shapes.
#include <gtest/gtest.h>

#include "system/runner.hpp"

namespace hmcc::system {
namespace {

workloads::WorkloadParams tiny_params() {
  workloads::WorkloadParams p;
  p.accesses_per_core = 2000;
  p.seed = 5;
  return p;
}

trace::MultiTrace dense_trace(std::uint32_t cores, std::uint64_t lines) {
  trace::MultiTrace mt;
  mt.per_core.resize(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    for (std::uint64_t i = 0; i < lines; ++i) {
      mt.per_core[c].push_back(trace::TraceRecord::load(
          (i * cores + c) * 64 + (1ULL << 30), 8));
      if (i % 64 == 63) {
        mt.per_core[c].push_back(trace::TraceRecord::make_barrier());
      }
    }
  }
  return mt;
}

TEST(Scaling, FutureHmcWith512ByteBlocks) {
  SystemConfig cfg = paper_system_config();
  cfg.hierarchy.num_cores = 4;
  cfg.hmc.block_bytes = 512;
  cfg.coalescer.max_packet_bytes = 256;  // commands still cap at 256 B
  ASSERT_TRUE(cfg.hmc.valid());
  apply_mode(cfg, CoalescerMode::kFull);
  System sys(cfg);
  const auto rep = sys.run(dense_trace(4, 1000));
  EXPECT_EQ(rep.cpu_accesses, 4000u);
  EXPECT_GT(rep.coalescing_efficiency(), 0.2);
}

TEST(Scaling, EightLinePacketsWhenCommandsAllow) {
  // A hypothetical future generation with 512 B max packets: the dynamic
  // MSHR line-ID field grows to 3 bits; our implementation is generic.
  coalescer::CoalescerConfig ccfg;
  ccfg.max_packet_bytes = 512;
  coalescer::DmcUnit dmc(ccfg);
  std::vector<coalescer::CoalescerRequest> batch;
  for (int i = 0; i < 8; ++i) {
    coalescer::CoalescerRequest r{};
    r.addr = 0x2000 + 64u * static_cast<Addr>(i);
    r.payload_bytes = 8;
    r.token = static_cast<std::uint64_t>(i);
    batch.push_back(r);
  }
  const auto res = dmc.coalesce(batch, 0);
  ASSERT_EQ(res.packets.size(), 1u);
  EXPECT_EQ(res.packets[0].bytes, 512u);

  coalescer::DynamicMshrFile mshrs(ccfg);
  const auto ins = mshrs.try_insert(res.packets[0]);
  ASSERT_TRUE(ins.accepted);
  ASSERT_EQ(ins.to_issue.size(), 1u);
  const auto fill = mshrs.on_fill(ins.to_issue[0].id);
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->targets.size(), 8u);  // 3-bit line IDs round-trip
}

TEST(Scaling, WiderWindowStillCorrect) {
  SystemConfig cfg = paper_system_config();
  cfg.hierarchy.num_cores = 4;
  cfg.coalescer.window = 32;
  apply_mode(cfg, CoalescerMode::kFull);
  System sys(cfg);
  const auto rep = sys.run(dense_trace(4, 1000));
  EXPECT_EQ(rep.llc_misses, 4000u);
  EXPECT_GT(rep.coalescing_efficiency(), 0.2);
}

TEST(Scaling, MoreMshrsMoreThroughput) {
  SystemConfig a = paper_system_config();
  a.hierarchy.num_cores = 4;
  a.hierarchy.llc_mshrs = 4;
  apply_mode(a, CoalescerMode::kFull);
  System sys_a(a);
  const auto small = sys_a.run(dense_trace(4, 2000));

  SystemConfig b = paper_system_config();
  b.hierarchy.num_cores = 4;
  b.hierarchy.llc_mshrs = 32;
  apply_mode(b, CoalescerMode::kFull);
  System sys_b(b);
  const auto big = sys_b.run(dense_trace(4, 2000));
  EXPECT_LT(big.runtime, small.runtime);
}

TEST(Scaling, SingleCoreSystemWorks) {
  SystemConfig cfg = paper_system_config();
  cfg.hierarchy.num_cores = 1;
  apply_mode(cfg, CoalescerMode::kFull);
  const auto r = run_workload("stream", cfg, tiny_params());
  EXPECT_GT(r.report.cpu_accesses, 0u);
  EXPECT_GT(r.report.runtime, 0u);
}

TEST(Scaling, OpenPagePolicyRuns) {
  SystemConfig cfg = paper_system_config();
  cfg.hierarchy.num_cores = 4;
  cfg.hmc.closed_page = false;
  apply_mode(cfg, CoalescerMode::kFull);
  System sys(cfg);
  const auto rep = sys.run(dense_trace(4, 1000));
  EXPECT_GT(rep.hmc.row_hits, 0u);
}

}  // namespace
}  // namespace hmcc::system
