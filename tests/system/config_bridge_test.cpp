#include "system/config_bridge.hpp"

#include <gtest/gtest.h>

#include "system/runner.hpp"

namespace hmcc::system {
namespace {

TEST(ConfigBridge, DefaultsMatchPaperPlatform) {
  Config cli;
  const SystemConfig cfg = config_from_cli(cli);
  EXPECT_EQ(cfg.hierarchy.num_cores, 12u);
  EXPECT_EQ(cfg.hierarchy.llc_mshrs, 16u);
  EXPECT_EQ(cfg.coalescer.window, 16u);
  EXPECT_EQ(cfg.coalescer.tau, 2u);
  EXPECT_EQ(cfg.hmc.capacity_bytes, 8ULL << 30);
  EXPECT_EQ(cfg.hmc.block_bytes, 256u);
  EXPECT_EQ(cfg.mode, CoalescerMode::kFull);
}

TEST(ConfigBridge, OverlaysEveryCategory) {
  Config cli;
  for (const char* kv :
       {"cores=4", "llc_mshrs=8", "mlp=4", "issue_interval=2", "l1_kb=16",
        "l2_kb=128", "llc_kb=1024", "window=8", "tau=1", "timeout=16",
        "bypass=off", "pipeline=step", "hmc_gb=4", "vaults=16", "banks=8",
        "links=2", "closed_page=off", "t_rcd=40", "mode=dmc-only"}) {
    ASSERT_TRUE(cli.set_from_string(kv));
  }
  SystemConfig cfg = paper_system_config();
  ASSERT_TRUE(overlay_config(cli, cfg));
  EXPECT_EQ(cfg.hierarchy.num_cores, 4u);
  EXPECT_EQ(cfg.hierarchy.llc_mshrs, 8u);
  EXPECT_EQ(cfg.coalescer.num_mshrs, 8u);  // kept consistent by apply_mode
  EXPECT_EQ(cfg.core.max_outstanding_misses, 4u);
  EXPECT_EQ(cfg.core.issue_interval, 2u);
  EXPECT_EQ(cfg.hierarchy.l1.size_bytes, 16u << 10);
  EXPECT_EQ(cfg.hierarchy.llc.size_bytes, 1u << 20);
  EXPECT_EQ(cfg.coalescer.window, 8u);
  EXPECT_EQ(cfg.coalescer.tau, 1u);
  // apply_mode(dmc-only) re-enables bypass: the mode owns the flag set.
  EXPECT_TRUE(cfg.coalescer.enable_bypass);
  EXPECT_EQ(cfg.coalescer.pipeline_shape, coalescer::PipelineShape::kPerStep);
  EXPECT_EQ(cfg.hmc.capacity_bytes, 4ULL << 30);
  EXPECT_EQ(cfg.hmc.num_vaults, 16u);
  EXPECT_EQ(cfg.hmc.num_links, 2u);
  EXPECT_FALSE(cfg.hmc.closed_page);
  EXPECT_EQ(cfg.hmc.t_rcd, 40u);
  EXPECT_EQ(cfg.mode, CoalescerMode::kDmcOnly);
  EXPECT_TRUE(cfg.coalescer.enable_dmc);
  EXPECT_FALSE(cfg.coalescer.enable_mshr_merge);
}

TEST(ConfigBridge, RejectsInvalidStructures) {
  {
    Config cli;
    cli.set("vaults", "33");  // not a power of two
    SystemConfig cfg = paper_system_config();
    EXPECT_FALSE(overlay_config(cli, cfg));
  }
  {
    Config cli;
    cli.set("mode", "warpspeed");
    SystemConfig cfg = paper_system_config();
    EXPECT_FALSE(overlay_config(cli, cfg));
  }
  {
    Config cli;
    cli.set("pipeline", "spiral");
    SystemConfig cfg = paper_system_config();
    EXPECT_FALSE(overlay_config(cli, cfg));
  }
  {
    Config cli;
    cli.set("window", "12");  // not a power of two
    SystemConfig cfg = paper_system_config();
    EXPECT_FALSE(overlay_config(cli, cfg));
  }
}

TEST(ConfigBridge, ConstraintsNameTheOffendingKnob) {
  // Cross-knob invariants come from the declarative platform_constraints()
  // table; each violation files a "key: problem" error under its knob.
  {
    Config cli;
    cli.set("window", "64");  // wider than the default 16-entry MSHR file
    SystemConfig cfg = paper_system_config();
    std::vector<std::string> errors;
    EXPECT_FALSE(overlay_config(cli, cfg, errors));
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].rfind("window: ", 0), 0u) << errors[0];
    EXPECT_NE(errors[0].find("CRQ capacity"), std::string::npos) << errors[0];
  }
  {
    Config cli;
    cli.set("window", "64");  // legal once the MSHR file is widened too
    cli.set("llc_mshrs", "64");
    SystemConfig cfg = paper_system_config();
    EXPECT_TRUE(overlay_config(cli, cfg));
    EXPECT_EQ(cfg.coalescer.window, 64u);
  }
  {
    Config cli;
    cli.set("bound", "128");  // lane bound without the mode it bounds
    SystemConfig cfg = paper_system_config();
    std::vector<std::string> errors;
    EXPECT_FALSE(overlay_config(cli, cfg, errors));
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0], "bound: requires vault_parallel=on");
  }
  {
    Config cli;
    cli.set("vault_parallel", "1");
    cli.set("bound", "128");
    SystemConfig cfg = paper_system_config();
    EXPECT_TRUE(overlay_config(cli, cfg));
    EXPECT_TRUE(cfg.exec.vault_parallel);
    EXPECT_EQ(cfg.exec.resolved_bound(), 128u);
  }
  {
    // bound=0 is "auto", legal in either mode.
    Config cli;
    cli.set("bound", "0");
    SystemConfig cfg = paper_system_config();
    EXPECT_TRUE(overlay_config(cli, cfg));
    EXPECT_EQ(cfg.exec.resolved_bound(), ExecConfig::kAutoBound);
  }
}

TEST(ConfigBridge, OverlaidSystemRuns) {
  Config cli;
  cli.set("cores", "2");
  cli.set("window", "8");
  cli.set("hmc_gb", "1");
  SystemConfig cfg = paper_system_config();
  ASSERT_TRUE(overlay_config(cli, cfg));
  workloads::WorkloadParams p;
  p.accesses_per_core = 1000;
  const auto r = run_workload("stream", cfg, p);
  EXPECT_GT(r.report.cpu_accesses, 0u);
}

}  // namespace
}  // namespace hmcc::system
