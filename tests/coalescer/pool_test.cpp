// PacketPool: the arena behind the enable_pool knob. Three properties are
// load-bearing: buffers are actually REUSED (the fresh counters stop moving
// once the pool warms up), reset() really drops everything between runs, and
// a pooled coalescer computes byte-identical results to the unpooled one.
#include "coalescer/pool.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "coalescer/coalescer.hpp"
#include "common/rng.hpp"

namespace hmcc::coalescer {
namespace {

CoalescerRequest req(Addr addr, std::uint64_t token = 0) {
  CoalescerRequest r{};
  r.addr = addr;
  r.payload_bytes = 8;
  r.token = token;
  return r;
}

TEST(PacketPool, RecycledRequestVectorsAreReusedWithCapacity) {
  PacketPool pool;
  std::vector<CoalescerRequest> v = pool.acquire_requests();
  EXPECT_EQ(pool.counters().request_vectors_fresh, 1u);
  for (int i = 0; i < 32; ++i) v.push_back(req(0x1000 + i * 64));
  const std::size_t warmed = v.capacity();
  pool.recycle_requests(std::move(v));
  ASSERT_EQ(pool.free_request_vectors(), 1u);

  std::vector<CoalescerRequest> again = pool.acquire_requests();
  EXPECT_EQ(pool.counters().request_vectors_reused, 1u);
  EXPECT_EQ(pool.counters().request_vectors_fresh, 1u);  // no new allocation
  EXPECT_TRUE(again.empty());          // contents were discarded...
  EXPECT_GE(again.capacity(), warmed); // ...capacity was kept
}

TEST(PacketPool, CapacityLessVectorsAreDroppedNotStowed) {
  PacketPool pool;
  pool.recycle_requests(std::vector<CoalescerRequest>{});
  pool.recycle_packets(std::vector<CoalescedPacket>{});
  EXPECT_EQ(pool.free_request_vectors(), 0u);
  EXPECT_EQ(pool.free_packet_vectors(), 0u);
}

TEST(PacketPool, RecyclingPacketsDonatesLeftoverConstituents) {
  PacketPool pool;
  std::vector<CoalescedPacket> pkts = pool.acquire_packets();
  CoalescedPacket p{};
  p.constituents.push_back(req(0x40));
  pkts.push_back(std::move(p));
  pool.recycle_packets(std::move(pkts));
  // The carrier AND the constituent vector inside it both returned home.
  EXPECT_EQ(pool.free_packet_vectors(), 1u);
  EXPECT_EQ(pool.free_request_vectors(), 1u);
}

TEST(PacketPool, ResetDropsBuffersAndZeroesCounters) {
  PacketPool pool;
  auto v = pool.acquire_requests();
  v.push_back(req(0));
  pool.recycle_requests(std::move(v));
  pool.keys_scratch().assign(16, 0);
  pool.groups_scratch().emplace_back();
  pool.reset();
  EXPECT_EQ(pool.free_request_vectors(), 0u);
  EXPECT_EQ(pool.free_packet_vectors(), 0u);
  EXPECT_TRUE(pool.keys_scratch().empty());
  EXPECT_TRUE(pool.groups_scratch().empty());
  EXPECT_EQ(pool.counters().request_vectors_fresh, 0u);
  EXPECT_EQ(pool.counters().request_vectors_reused, 0u);
}

// --- Pooled coalescer vs unpooled: identical behavior, real reuse ----------

struct Harness {
  explicit Harness(CoalescerConfig cfg, Cycle mem_latency = 300)
      : coalescer(kernel, cfg,
                  [this, mem_latency](const CoalescedPacket& pkt) {
                    issued.push_back(pkt);
                    kernel.schedule(mem_latency, [this, id = pkt.id] {
                      coalescer.on_memory_response(id);
                    });
                  },
                  [this](Addr line, std::uint64_t token) {
                    completions.emplace_back(line, token);
                  }) {}

  Kernel kernel;
  MemoryCoalescer coalescer;
  std::vector<CoalescedPacket> issued;
  std::vector<std::pair<Addr, std::uint64_t>> completions;
};

void drive(Harness& h, std::uint64_t seed, int count) {
  Xoshiro256 rng(seed);
  std::uint64_t token = 1;
  // Pace submissions a few cycles apart so the coalescer reaches a steady
  // state (like an MLP-limited core): a bounded set of packets is in flight
  // at any moment, which is the regime the pool is built for.
  for (int i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    CoalescerRequest r{};
    if (roll < 0.5) {
      r.addr = 0x10000 + static_cast<Addr>(i) * 64;  // coalescable stream
    } else {
      r.addr = 0x200000 + rng.below(1 << 12) * 64;   // scattered
    }
    r.payload_bytes = 8;
    r.type = rng.chance(0.3) ? ReqType::kStore : ReqType::kLoad;
    r.token = token++;
    h.kernel.schedule_at(1 + static_cast<Cycle>(i) * 4,
                         [&h, r] { h.coalescer.submit(r); });
    if (i % 61 == 60) {
      h.kernel.schedule_at(1 + static_cast<Cycle>(i) * 4,
                           [&h] { h.coalescer.submit_fence(); });
    }
  }
  h.kernel.run();
}

TEST(PacketPool, PooledCoalescerIsByteIdenticalToUnpooled) {
  for (std::uint64_t seed : {3ULL, 17ULL, 255ULL}) {
    CoalescerConfig off;
    CoalescerConfig on;
    on.enable_pool = true;
    Harness a(off);
    Harness b(on);
    drive(a, seed, 900);
    drive(b, seed, 900);

    ASSERT_EQ(a.issued.size(), b.issued.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.issued.size(); ++i) {
      EXPECT_EQ(a.issued[i].addr, b.issued[i].addr);
      EXPECT_EQ(a.issued[i].bytes, b.issued[i].bytes);
      EXPECT_EQ(a.issued[i].type, b.issued[i].type);
      EXPECT_EQ(a.issued[i].ready_at, b.issued[i].ready_at);
    }
    EXPECT_EQ(a.completions, b.completions) << "seed " << seed;
    EXPECT_EQ(a.kernel.now(), b.kernel.now()) << "seed " << seed;
    EXPECT_EQ(a.coalescer.stats().memory_requests,
              b.coalescer.stats().memory_requests);
    EXPECT_EQ(a.coalescer.stats().crq_merges, b.coalescer.stats().crq_merges);
    EXPECT_EQ(a.coalescer.stats().batches, b.coalescer.stats().batches);

    // The pooled run actually pooled: after warm-up, acquires are served
    // from the free lists, not fresh allocations.
    const PoolCounters& c = b.coalescer.pool().counters();
    EXPECT_GT(c.request_vectors_reused, c.request_vectors_fresh);
    // The unpooled run never touched its (inert) pool.
    const PoolCounters& z = a.coalescer.pool().counters();
    EXPECT_EQ(z.request_vectors_fresh + z.request_vectors_reused, 0u);
  }
}

}  // namespace
}  // namespace hmcc::coalescer
