#include "coalescer/request.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace hmcc::coalescer {
namespace {

TEST(SortKey, RoundTripFields) {
  const Addr addr = 0xABCDEF012345ULL;
  for (ReqType t : {ReqType::kLoad, ReqType::kStore}) {
    for (bool valid : {true, false}) {
      const std::uint64_t key = make_sort_key(addr, t, valid);
      EXPECT_EQ(key_addr(key), addr);
      EXPECT_EQ(key_type(key), t);
      EXPECT_EQ(key_valid(key), valid);
    }
  }
}

TEST(SortKey, TypeBitIs52ValidBitIs53) {
  const std::uint64_t load = make_sort_key(0, ReqType::kLoad);
  const std::uint64_t store = make_sort_key(0, ReqType::kStore);
  const std::uint64_t invalid = make_sort_key(0, ReqType::kLoad, false);
  EXPECT_EQ(store - load, 1ULL << 52);
  EXPECT_EQ(invalid - load, 1ULL << 53);
}

TEST(SortKey, StoresSortAfterAllLoads) {
  // §3.4: "the addresses of store requests are numerically larger than the
  // address of all possible load requests".
  const Addr max_addr = low_mask(arch::kPhysAddrBits);
  EXPECT_LT(make_sort_key(max_addr, ReqType::kLoad),
            make_sort_key(0, ReqType::kStore));
}

TEST(SortKey, InvalidSortsAfterEverything) {
  const Addr max_addr = low_mask(arch::kPhysAddrBits);
  EXPECT_LT(make_sort_key(max_addr, ReqType::kStore), kInvalidKey);
  EXPECT_LT(make_sort_key(max_addr, ReqType::kStore, true),
            make_sort_key(0, ReqType::kLoad, false));
}

TEST(SortKey, AddressAboveBit52IsMasked) {
  const Addr dirty_addr = (1ULL << 52) | 0x1000;
  const std::uint64_t key = make_sort_key(dirty_addr, ReqType::kLoad);
  EXPECT_EQ(key_addr(key), 0x1000u);
  EXPECT_EQ(key_type(key), ReqType::kLoad);
}

TEST(SortKey, OrderingSeparatesTypesUnderPlainCompare) {
  // Sorting mixed requests by the raw key must yield all loads (by address)
  // followed by all stores (by address) — with zero type-aware logic.
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(make_sort_key(rng.below(1ULL << 40),
                                 rng.chance(0.5) ? ReqType::kStore
                                                 : ReqType::kLoad));
  }
  std::sort(keys.begin(), keys.end());
  bool seen_store = false;
  Addr prev_addr = 0;
  for (std::uint64_t k : keys) {
    if (key_type(k) == ReqType::kStore) {
      if (!seen_store) {
        seen_store = true;
        prev_addr = 0;
      }
    } else {
      EXPECT_FALSE(seen_store) << "load after a store in sorted order";
    }
    EXPECT_GE(key_addr(k), prev_addr);
    prev_addr = key_addr(k);
  }
}

TEST(CoalescedPacket, PayloadSumsConstituents) {
  CoalescedPacket pkt{};
  pkt.addr = 0x1000;
  pkt.bytes = 128;
  CoalescerRequest a{};
  a.payload_bytes = 8;
  CoalescerRequest b{};
  b.payload_bytes = 16;
  pkt.constituents = {a, b};
  EXPECT_EQ(pkt.payload_bytes(), 24u);
  EXPECT_EQ(pkt.num_lines(64), 2u);
  EXPECT_EQ(pkt.end(), 0x1080u);
}

}  // namespace
}  // namespace hmcc::coalescer
