// Parameterized sweep over coalescer configurations: for every (window,
// tau, shape, mshrs) combination the coalescer must preserve the token
// stream, respect packet legality, and quiesce.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "coalescer/coalescer.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"

namespace hmcc::coalescer {
namespace {

// (window, tau, per_step_pipeline, num_mshrs, bypass)
using Shape = std::tuple<std::uint32_t, Cycle, bool, std::uint32_t, bool>;

class CoalescerShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(CoalescerShapeTest, RandomTrafficRoundTrips) {
  const auto [window, tau, per_step, mshrs, bypass] = GetParam();
  CoalescerConfig cfg;
  cfg.window = window;
  cfg.tau = tau;
  cfg.pipeline_shape =
      per_step ? PipelineShape::kPerStep : PipelineShape::kPerStage;
  cfg.num_mshrs = mshrs;
  cfg.enable_bypass = bypass;

  Kernel kernel;
  std::multiset<std::uint64_t> issued_tokens;
  std::multiset<std::uint64_t> completed_tokens;
  std::uint64_t wire_bytes = 0;
  MemoryCoalescer* coalescer_ptr = nullptr;
  MemoryCoalescer coalescer(
      kernel, cfg,
      [&](const CoalescedPacket& pkt) {
        EXPECT_TRUE(pkt.bytes == 64 || pkt.bytes == 128 || pkt.bytes == 256);
        EXPECT_EQ(align_down(pkt.addr, 256),
                  align_down(pkt.end() - 1, 256));
        wire_bytes += pkt.bytes;
        kernel.schedule(250 + pkt.bytes, [&, id = pkt.id] {
          coalescer_ptr->on_memory_response(id);
        });
      },
      [&](Addr, std::uint64_t token) { completed_tokens.insert(token); });
  coalescer_ptr = &coalescer;

  Xoshiro256 rng(static_cast<std::uint64_t>(window) * 131 + tau * 7 +
                 mshrs * 3 + (per_step ? 1 : 0));
  const std::uint64_t n = 400;
  for (std::uint64_t i = 0; i < n; ++i) {
    CoalescerRequest r{};
    r.addr = rng.below(1 << 14) * 64;
    r.type = rng.chance(0.3) ? ReqType::kStore : ReqType::kLoad;
    r.payload_bytes = 8;
    r.token = i;
    issued_tokens.insert(i);
    coalescer.submit(r);
    if (i % 117 == 116) coalescer.submit_fence();
  }
  kernel.run();
  EXPECT_EQ(completed_tokens, issued_tokens);
  EXPECT_TRUE(coalescer.idle());
  EXPECT_GT(wire_bytes, 0u);
  EXPECT_LE(coalescer.stats().memory_requests,
            coalescer.stats().raw_requests);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoalescerShapeTest,
    ::testing::Values(Shape{16, 2, false, 16, false},  // paper design
                      Shape{16, 2, true, 16, false},   // 10-stage pipe
                      Shape{16, 2, false, 16, true},   // with bypass
                      Shape{8, 2, false, 16, false},   // narrow window
                      Shape{32, 2, false, 16, true},   // wide window
                      Shape{16, 1, false, 16, false},  // fast comparators
                      Shape{16, 4, true, 8, true},     // slow + few MSHRs
                      Shape{4, 2, false, 2, false},    // tiny everything
                      Shape{64, 2, true, 32, true}),   // big everything
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_tau" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_step" : "_stage") + "_m" +
             std::to_string(std::get<3>(info.param)) +
             (std::get<4>(info.param) ? "_bypass" : "_nobypass");
    });

}  // namespace
}  // namespace hmcc::coalescer
