#include "coalescer/dmc_unit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace hmcc::coalescer {
namespace {

CoalescerConfig line_cfg() {
  CoalescerConfig cfg;
  cfg.granularity = Granularity::kLine;
  return cfg;
}

CoalescerRequest req(Addr addr, ReqType type = ReqType::kLoad,
                     std::uint32_t payload = 64, std::uint64_t token = 0) {
  CoalescerRequest r{};
  r.addr = addr;
  r.type = type;
  r.payload_bytes = payload;
  r.token = token;
  return r;
}

std::vector<CoalescerRequest> sorted(std::vector<CoalescerRequest> v) {
  std::stable_sort(v.begin(), v.end(),
                   [](const CoalescerRequest& a, const CoalescerRequest& b) {
                     return a.sort_key() < b.sort_key();
                   });
  return v;
}

/// Invariant checker: the packets must cover exactly the union of requested
/// lines, each constituent appears exactly once, no packet mixes types or
/// crosses a max-packet block.
void check_coverage(const std::vector<CoalescerRequest>& in,
                    const DmcResult& out, const CoalescerConfig& cfg) {
  using TypedLine = std::pair<int, Addr>;
  std::multiset<std::uint64_t> in_tokens;
  std::set<TypedLine> in_lines;
  for (const auto& r : in) {
    in_tokens.insert(r.token);
    in_lines.insert({static_cast<int>(r.type),
                     align_down(r.addr, cfg.line_bytes)});
  }
  std::multiset<std::uint64_t> out_tokens;
  std::set<TypedLine> out_lines;
  for (const auto& p : out.packets) {
    EXPECT_EQ(p.bytes % cfg.line_bytes, 0u);
    EXPECT_TRUE(p.bytes == 64 || p.bytes == 128 || p.bytes == 256)
        << p.bytes;
    // Block containment.
    EXPECT_EQ(align_down(p.addr, cfg.max_packet_bytes),
              align_down(p.end() - 1, cfg.max_packet_bytes));
    for (Addr l = p.addr; l < p.end(); l += cfg.line_bytes) {
      EXPECT_TRUE(out_lines.insert({static_cast<int>(p.type), l}).second)
          << "duplicate (type,line)";
    }
    for (const auto& c : p.constituents) {
      out_tokens.insert(c.token);
      EXPECT_EQ(c.type, p.type) << "type-mixed packet";
      const Addr cl = align_down(c.addr, cfg.line_bytes);
      EXPECT_GE(cl, p.addr);
      EXPECT_LT(cl, p.end());
    }
  }
  EXPECT_EQ(out_tokens, in_tokens) << "constituents lost or duplicated";
  // Every requested line is covered; over-fetch only from power-of-two
  // chunking inside a block never happens in line mode (runs split exactly).
  EXPECT_EQ(out_lines, in_lines);
}

TEST(DmcLine, FourContiguousLinesBecomeOne256B) {
  DmcUnit dmc(line_cfg());
  auto in = sorted({req(0x1000), req(0x1040), req(0x1080), req(0x10C0)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].addr, 0x1000u);
  EXPECT_EQ(out.packets[0].bytes, 256u);
  EXPECT_EQ(out.packets[0].constituents.size(), 4u);
  check_coverage(in, out, line_cfg());
}

TEST(DmcLine, TwoContiguousLinesBecome128B) {
  DmcUnit dmc(line_cfg());
  auto in = sorted({req(0x1000), req(0x1040)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].bytes, 128u);
}

TEST(DmcLine, ThreeContiguousLinesSplit128Plus64) {
  DmcUnit dmc(line_cfg());
  auto in = sorted({req(0x1000), req(0x1040), req(0x1080)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(out.packets[0].bytes, 128u);
  EXPECT_EQ(out.packets[0].addr, 0x1000u);
  EXPECT_EQ(out.packets[1].bytes, 64u);
  EXPECT_EQ(out.packets[1].addr, 0x1080u);
  check_coverage(in, out, line_cfg());
}

TEST(DmcLine, NonContiguousStayUncoalesced) {
  DmcUnit dmc(line_cfg());
  auto in = sorted({req(0x1000), req(0x2000), req(0x3000)});
  const DmcResult out = dmc.coalesce(in, 0);
  EXPECT_EQ(out.packets.size(), 3u);
  EXPECT_EQ(out.merge_ops, 0u);
  for (const auto& p : out.packets) EXPECT_EQ(p.bytes, 64u);
}

TEST(DmcLine, RunsNeverCrossBlockBoundary) {
  DmcUnit dmc(line_cfg());
  // Lines 0x1C0 and 0x200 are contiguous but straddle the 256 B boundary.
  auto in = sorted({req(0x1C0), req(0x200)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(out.packets[0].bytes, 64u);
  EXPECT_EQ(out.packets[1].bytes, 64u);
}

TEST(DmcLine, LoadsAndStoresNeverMix) {
  DmcUnit dmc(line_cfg());
  auto in = sorted({req(0x1000, ReqType::kLoad), req(0x1040, ReqType::kStore),
                    req(0x1080, ReqType::kLoad),
                    req(0x10C0, ReqType::kStore)});
  const DmcResult out = dmc.coalesce(in, 0);
  // Sorted order groups loads {0x1000,0x1080} and stores {0x1040,0x10C0};
  // neither pair is contiguous, so four packets result.
  EXPECT_EQ(out.packets.size(), 4u);
  check_coverage(in, out, line_cfg());
}

TEST(DmcLine, ContiguousSameTypeMixedStreamCoalescesPerType) {
  DmcUnit dmc(line_cfg());
  auto in = sorted({req(0x1000, ReqType::kLoad), req(0x1040, ReqType::kLoad),
                    req(0x2000, ReqType::kStore),
                    req(0x2040, ReqType::kStore)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(out.packets[0].type, ReqType::kLoad);
  EXPECT_EQ(out.packets[0].bytes, 128u);
  EXPECT_EQ(out.packets[1].type, ReqType::kStore);
  EXPECT_EQ(out.packets[1].bytes, 128u);
}

TEST(DmcLine, DuplicateLinesDedupe) {
  DmcUnit dmc(line_cfg());
  auto in = sorted({req(0x1000, ReqType::kLoad, 8, 1),
                    req(0x1008, ReqType::kLoad, 8, 2),
                    req(0x1040, ReqType::kLoad, 8, 3)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].bytes, 128u);
  EXPECT_EQ(out.packets[0].constituents.size(), 3u);
  check_coverage(in, out, line_cfg());
}

TEST(DmcLine, EmptyInputYieldsNothing) {
  DmcUnit dmc(line_cfg());
  const DmcResult out = dmc.coalesce({}, 5);
  EXPECT_TRUE(out.packets.empty());
}

TEST(DmcLine, TimingGrowsWithMergeWork) {
  DmcUnit dmc(line_cfg());
  // Fully coalescable window vs fully scattered window of the same size:
  // the coalescable one spends more merge-stage slots (Fig 13's FT effect).
  std::vector<CoalescerRequest> dense;
  std::vector<CoalescerRequest> sparse;
  for (int i = 0; i < 16; ++i) {
    dense.push_back(req(0x4000 + 64u * static_cast<Addr>(i)));
    sparse.push_back(req(0x4000 + 4096u * static_cast<Addr>(i)));
  }
  const DmcResult d = dmc.coalesce(sorted(dense), 0);
  const DmcResult s = dmc.coalesce(sorted(sparse), 0);
  EXPECT_GT(d.merge_ops, s.merge_ops);
  EXPECT_GT(d.finished_at, s.finished_at);
}

TEST(DmcLine, PropertyRandomWindowsPreserveCoverage) {
  const CoalescerConfig cfg = line_cfg();
  DmcUnit dmc(cfg);
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<CoalescerRequest> in;
    const auto n = rng.between(1, 16);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Addr line = rng.below(64) * 64;  // dense little region
      in.push_back(req(line, rng.chance(0.3) ? ReqType::kStore
                                             : ReqType::kLoad,
                       8, trial * 100 + i));
    }
    auto s = sorted(in);
    // Dedup identical (line,type) pairs for the line-coverage check but keep
    // all tokens.
    const DmcResult out = dmc.coalesce(s, 0);
    check_coverage(in, out, cfg);
  }
}

// ---------------------------------------------------------------------------
// Compare-slot accounting at run breaks (§4.1 timing model)
// ---------------------------------------------------------------------------
//
// A run can end two ways and they charge differently: a TYPE mismatch is
// detected before the candidate enters the compare stage (no charge), while
// an ADDRESS mismatch is discovered by the compare itself — the slot is
// charged, then refunded because re-opening the run reuses the same hardware
// slot. Net effect: both two-request windows below finish at start + 3*tau.

TEST(DmcLine, AddressMismatchRefundsItsCompareSlot) {
  const CoalescerConfig cfg = line_cfg();
  DmcUnit dmc(cfg);
  auto in = sorted({req(0x1000), req(0x3000)});  // same type, far apart
  const DmcResult out = dmc.coalesce(in, 7);
  EXPECT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(out.merge_ops, 0u);
  // fill + opener + (compare - refund) + second opener = 3 tau
  EXPECT_EQ(out.finished_at, 7 + 3 * cfg.tau);
}

TEST(DmcLine, TypeMismatchNeverEntersTheCompareStage) {
  const CoalescerConfig cfg = line_cfg();
  DmcUnit dmc(cfg);
  // Adjacent lines, different types: would be contiguous if types matched.
  auto in = sorted({req(0x1000, ReqType::kLoad), req(0x1040, ReqType::kStore)});
  const DmcResult out = dmc.coalesce(in, 7);
  EXPECT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(out.merge_ops, 0u);
  // fill + opener + second opener: identical cost to the refunded
  // address-mismatch above even though no compare was ever issued.
  EXPECT_EQ(out.finished_at, 7 + 3 * cfg.tau);
}

TEST(DmcLine, RunBreakAfterMergeChargesExactly) {
  const CoalescerConfig cfg = line_cfg();
  DmcUnit dmc(cfg);
  auto in = sorted({req(0x1000), req(0x1040), req(0x3000)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(out.packets[0].addr, 0x1000u);
  EXPECT_EQ(out.packets[0].bytes, 128u);
  EXPECT_EQ(out.packets[1].addr, 0x3000u);
  EXPECT_EQ(out.merge_ops, 1u);
  // fill + opener + compare + merge + (compare - refund) + opener = 5 tau
  EXPECT_EQ(out.finished_at, 5 * cfg.tau);
}

// ---------------------------------------------------------------------------
// Payload granularity (Figures 9-10 accounting mode)
// ---------------------------------------------------------------------------

CoalescerConfig payload_cfg() {
  CoalescerConfig cfg;
  cfg.granularity = Granularity::kPayload;
  return cfg;
}

TEST(DmcPayload, SixteenContiguous16BLoadsBecomeOne256B) {
  DmcUnit dmc(payload_cfg());
  std::vector<CoalescerRequest> in;
  for (int i = 0; i < 16; ++i) {
    in.push_back(req(0x1000 + 16u * static_cast<Addr>(i), ReqType::kLoad, 16));
  }
  const DmcResult out = dmc.coalesce(sorted(in), 0);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].bytes, 256u);
  EXPECT_EQ(out.packets[0].payload_bytes(), 256u);
}

TEST(DmcPayload, ScatteredSmallLoadsStaySmall) {
  DmcUnit dmc(payload_cfg());
  std::vector<CoalescerRequest> in;
  for (int i = 0; i < 8; ++i) {
    in.push_back(req(0x10000 * static_cast<Addr>(i + 1), ReqType::kLoad, 8));
  }
  const DmcResult out = dmc.coalesce(sorted(in), 0);
  EXPECT_EQ(out.packets.size(), 8u);
  for (const auto& p : out.packets) EXPECT_EQ(p.bytes, 16u);
}

TEST(DmcPayload, SizesRoundToFlitMultiples) {
  DmcUnit dmc(payload_cfg());
  auto in = sorted({req(0x1000, ReqType::kLoad, 8),
                    req(0x1008, ReqType::kLoad, 24)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].bytes, 32u);  // 32 bytes covered exactly
}

TEST(DmcPayload, GapBetween128And256Rounds) {
  DmcUnit dmc(payload_cfg());
  // 10 x 16 B contiguous = 160 B payload -> must round to 256 B (HMC has no
  // 144..240 B commands) and anchor inside one block.
  std::vector<CoalescerRequest> in;
  for (int i = 0; i < 10; ++i) {
    in.push_back(req(0x2000 + 16u * static_cast<Addr>(i), ReqType::kLoad, 16));
  }
  const DmcResult out = dmc.coalesce(sorted(in), 0);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].bytes, 256u);
  EXPECT_EQ(align_down(out.packets[0].addr, 256),
            align_down(out.packets[0].end() - 1, 256));
}

TEST(DmcPayload, RequestStraddlingBlockIsSplit) {
  DmcUnit dmc(payload_cfg());
  auto in = sorted({req(0x10F8, ReqType::kLoad, 16)});  // crosses 0x1100
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 2u);
  std::uint64_t payload = 0;
  for (const auto& p : out.packets) payload += p.payload_bytes();
  EXPECT_EQ(payload, 16u);
}

TEST(DmcPayload, OverlappingExtentsMerge) {
  DmcUnit dmc(payload_cfg());
  auto in = sorted({req(0x3000, ReqType::kLoad, 32),
                    req(0x3010, ReqType::kLoad, 32)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].bytes, 48u);
}

TEST(DmcPayload, SplitTailMergesWithNextBlockExtent) {
  DmcUnit dmc(payload_cfg());
  // 0x10F0+32 straddles the 0x1100 block boundary: its head stays in the
  // first block and its tail (0x1100, 16 B) must seed a new extent that the
  // following request then joins.
  auto in = sorted({req(0x10F0, ReqType::kLoad, 32),
                    req(0x1110, ReqType::kLoad, 16)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(out.packets[0].addr, 0x10F0u);
  EXPECT_EQ(out.packets[0].bytes, 16u);
  EXPECT_EQ(out.packets[1].addr, 0x1100u);
  EXPECT_EQ(out.packets[1].bytes, 32u);
  std::uint64_t payload = 0;
  for (const auto& p : out.packets) payload += p.payload_bytes();
  EXPECT_EQ(payload, 48u);
}

TEST(DmcPayload, RoundingSpillReAnchorsAtBlockStart) {
  DmcUnit dmc(payload_cfg());
  // 10 x 16 B at 0x2060..0x20F0: the 160 B extent rounds to 256 B, which
  // would spill past 0x2100 if anchored at 0x2060 — the packet must re-anchor
  // at the block start 0x2000.
  std::vector<CoalescerRequest> in;
  for (int i = 0; i < 10; ++i) {
    in.push_back(req(0x2060 + 16u * static_cast<Addr>(i), ReqType::kLoad, 16));
  }
  const DmcResult out = dmc.coalesce(sorted(in), 0);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].addr, 0x2000u);
  EXPECT_EQ(out.packets[0].bytes, 256u);
  EXPECT_EQ(out.packets[0].payload_bytes(), 160u);
}

TEST(DmcPayload, ExactFitKeepsTheExtentAnchor) {
  DmcUnit dmc(payload_cfg());
  // 48 B at 0x2040 is a legal HMC size and fits its block from the extent
  // base, so no re-anchoring happens.
  auto in = sorted({req(0x2040, ReqType::kLoad, 16),
                    req(0x2050, ReqType::kLoad, 16),
                    req(0x2060, ReqType::kLoad, 16)});
  const DmcResult out = dmc.coalesce(in, 0);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].addr, 0x2040u);
  EXPECT_EQ(out.packets[0].bytes, 48u);
}

TEST(DmcPayload, PropertyPayloadNeverLost) {
  DmcUnit dmc(payload_cfg());
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<CoalescerRequest> in;
    std::uint64_t total_payload = 0;
    const auto n = rng.between(1, 16);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto payload = static_cast<std::uint32_t>(8u << rng.below(3));
      in.push_back(req(rng.below(1 << 16), ReqType::kLoad, payload,
                       trial * 100 + i));
      total_payload += payload;
    }
    const DmcResult out = dmc.coalesce(sorted(in), 0);
    std::uint64_t out_payload = 0;
    std::uint64_t out_wire = 0;
    for (const auto& p : out.packets) {
      out_payload += p.payload_bytes();
      out_wire += p.bytes;
      EXPECT_LE(p.bytes, 256u);
      EXPECT_EQ(p.bytes % 16, 0u);
    }
    EXPECT_EQ(out_payload, total_payload);
    EXPECT_LE(out.packets.size(), in.size() + n);  // splits bounded
    (void)out_wire;
  }
}

}  // namespace
}  // namespace hmcc::coalescer
