#include "coalescer/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coalescer/request.hpp"
#include "common/rng.hpp"

namespace hmcc::coalescer {
namespace {

std::vector<std::uint64_t> random_window(Xoshiro256& rng, std::uint32_t n,
                                         std::uint32_t valid) {
  std::vector<std::uint64_t> keys(n, kInvalidKey);
  for (std::uint32_t i = 0; i < valid; ++i) keys[i] = rng.below(1 << 24);
  return keys;
}

TEST(Pipeline, PerStageShapeMatchesPaper221Split) {
  // §4.1: n=16 -> 4 pipeline stages with steps distributed 2-2-3-3, so the
  // unloaded latency is 10 tau and a sorted window emerges every 3 tau.
  PipelinedSorter sorter(16, PipelineShape::kPerStage, 2);
  const PipelineCost cost = sorter.cost();
  EXPECT_EQ(cost.pipeline_stages, 4u);
  EXPECT_EQ(cost.total_steps, 10u);
  EXPECT_EQ(cost.latency, 20u);              // 10 tau, tau=2
  EXPECT_EQ(cost.initiation_interval, 6u);   // 3 tau
  EXPECT_EQ(cost.request_buffers, 64u);      // 4 stages x 16 slots
}

TEST(Pipeline, PerStepShapeIsTenStages) {
  PipelinedSorter sorter(16, PipelineShape::kPerStep, 2);
  const PipelineCost cost = sorter.cost();
  EXPECT_EQ(cost.pipeline_stages, 10u);
  EXPECT_EQ(cost.latency, 20u);
  EXPECT_EQ(cost.initiation_interval, 2u);   // 1 tau
  EXPECT_EQ(cost.request_buffers, 160u);     // §4.1: "160 request buffers"
  EXPECT_EQ(cost.comparators, 63u);          // §4.1: "63 comparators"
}

TEST(Pipeline, PerStageUsesFewerComparators) {
  const PipelineCost per_stage =
      PipelinedSorter(16, PipelineShape::kPerStage, 2).cost();
  const PipelineCost per_step =
      PipelinedSorter(16, PipelineShape::kPerStep, 2).cost();
  EXPECT_LT(per_stage.comparators, per_step.comparators);
  EXPECT_LT(per_stage.request_buffers, per_step.request_buffers);
}

TEST(Pipeline, FullWindowUnloadedLatency) {
  PipelinedSorter sorter(16, PipelineShape::kPerStage, 2);
  Xoshiro256 rng(3);
  auto keys = random_window(rng, 16, 16);
  const Cycle done = sorter.process(keys, 16, /*submit=*/100);
  EXPECT_EQ(done, 100 + 20);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(Pipeline, BackToBackBatchesPipeline) {
  // Two saturating batches: the second finishes one initiation interval
  // after the first, not one full latency after.
  PipelinedSorter sorter(16, PipelineShape::kPerStage, 2);
  Xoshiro256 rng(4);
  auto k1 = random_window(rng, 16, 16);
  auto k2 = random_window(rng, 16, 16);
  const Cycle d1 = sorter.process(k1, 16, 0);
  const Cycle d2 = sorter.process(k2, 16, 0);
  EXPECT_EQ(d1, 20u);
  EXPECT_EQ(d2, 26u);  // + 3 tau (the deepest stage)
}

TEST(Pipeline, StageSelectShortensSmallWindows) {
  PipelinedSorter sorter(16, PipelineShape::kPerStage, 2);
  Xoshiro256 rng(5);
  // 8 valid keys need 3 algorithmic stages = 6 steps = 12 cycles.
  auto keys = random_window(rng, 16, 8);
  const Cycle done = sorter.process(keys, 8, 0);
  EXPECT_EQ(done, 12u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_GT(sorter.stages_skipped(), 0u);
}

TEST(Pipeline, SingleRequestWindowStillTakesOneTau) {
  PipelinedSorter sorter(16, PipelineShape::kPerStage, 2);
  std::vector<std::uint64_t> keys(16, kInvalidKey);
  keys[0] = 42;
  const Cycle done = sorter.process(keys, 1, 10);
  EXPECT_EQ(done, 12u);
}

TEST(Pipeline, SortsEveryValidCountCorrectly) {
  Xoshiro256 rng(6);
  for (auto shape : {PipelineShape::kPerStage, PipelineShape::kPerStep}) {
    PipelinedSorter sorter(16, shape, 2);
    for (std::uint32_t valid = 1; valid <= 16; ++valid) {
      for (int t = 0; t < 50; ++t) {
        auto keys = random_window(rng, 16, valid);
        auto expect = keys;
        std::sort(expect.begin(), expect.end());
        sorter.process(keys, valid, sorter.batches() * 100);
        EXPECT_EQ(keys, expect);
      }
    }
  }
}

TEST(Pipeline, FenceMonopolizesFirstStage) {
  PipelinedSorter sorter(16, PipelineShape::kPerStage, 2);
  const Cycle fence_done = sorter.process_fence(0);
  EXPECT_EQ(fence_done, 4u);  // stage depth 2 steps * tau 2
  // A batch submitted at 0 now waits for the fence to clear stage 1.
  Xoshiro256 rng(7);
  auto keys = random_window(rng, 16, 16);
  const Cycle done = sorter.process(keys, 16, 0);
  EXPECT_EQ(done, 4u + 20u);
}

TEST(Pipeline, LatencyStatisticsAccumulate) {
  PipelinedSorter sorter(16, PipelineShape::kPerStage, 2);
  Xoshiro256 rng(8);
  for (int i = 0; i < 10; ++i) {
    auto keys = random_window(rng, 16, 16);
    sorter.process(keys, 16, static_cast<Cycle>(1000 * i));
  }
  EXPECT_EQ(sorter.batches(), 10u);
  EXPECT_DOUBLE_EQ(sorter.sort_latency().mean(), 20.0);
  sorter.reset_timing();
  EXPECT_EQ(sorter.batches(), 0u);
}

TEST(Pipeline, WiderWindowsStillSort) {
  Xoshiro256 rng(9);
  for (std::uint32_t n : {4u, 8u, 32u, 64u}) {
    PipelinedSorter sorter(n, PipelineShape::kPerStage, 2);
    for (int t = 0; t < 30; ++t) {
      const auto valid = static_cast<std::uint32_t>(rng.between(1, n));
      auto keys = random_window(rng, n, valid);
      auto expect = keys;
      std::sort(expect.begin(), expect.end());
      sorter.process(keys, valid, static_cast<Cycle>(t) * 1000);
      EXPECT_EQ(keys, expect);
    }
  }
}

}  // namespace
}  // namespace hmcc::coalescer
