#include "coalescer/sorting_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "coalescer/request.hpp"

namespace hmcc::coalescer {
namespace {

TEST(SortingNetwork, PaperQuotedStructureForN16) {
  SortingNetwork net(16);
  // §3.3: "the entire network consists of four stages and 10 steps";
  // §4.1: 63 comparators.
  EXPECT_EQ(net.num_stages(), 4u);
  EXPECT_EQ(net.num_steps(), 10u);
  EXPECT_EQ(net.num_comparators(), 63u);
}

TEST(SortingNetwork, StageStepCountsFollowTriangular) {
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    SortingNetwork net(n);
    const std::uint32_t k = net.num_stages();
    EXPECT_EQ(1u << k, n);
    EXPECT_EQ(net.num_steps(), k * (k + 1) / 2);
    for (std::uint32_t s = 0; s < k; ++s) {
      EXPECT_EQ(net.stage(s).size(), s + 1) << "stage " << s;
    }
  }
}

TEST(SortingNetwork, StepsAreParallelComparatorSets) {
  // Within one step no wire may appear twice (that's what lets all
  // comparators of a step fire in the same tau).
  SortingNetwork net(32);
  for (std::uint32_t s = 0; s < net.num_stages(); ++s) {
    for (const auto& step : net.stage(s)) {
      std::vector<bool> used(32, false);
      for (const Comparator& c : step) {
        ASSERT_LT(c.lo, c.hi);
        ASSERT_LT(c.hi, 32u);
        EXPECT_FALSE(used[c.lo]);
        EXPECT_FALSE(used[c.hi]);
        used[c.lo] = used[c.hi] = true;
      }
    }
  }
}

TEST(SortingNetwork, ZeroOnePrincipleSmallWidths) {
  // A comparator network sorts all inputs iff it sorts all 0/1 inputs.
  for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
    SortingNetwork net(n);
    EXPECT_TRUE(net.verify_zero_one()) << "n=" << n;
  }
}

TEST(SortingNetwork, SortsRandomPermutations) {
  Xoshiro256 rng(11);
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    SortingNetwork net(n);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint64_t> keys(n);
      for (auto& k : keys) k = rng.below(1000);
      std::vector<std::uint64_t> expect = keys;
      std::sort(expect.begin(), expect.end());
      net.sort(keys);
      EXPECT_EQ(keys, expect);
    }
  }
}

TEST(SortingNetwork, SortsAdversarialPatterns) {
  SortingNetwork net(16);
  std::vector<std::vector<std::uint64_t>> patterns = {
      {15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0},  // reversed
      {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},        // constant
      {1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0},        // alternating
      {0, 1, 2, 3, 4, 5, 6, 7, 7, 6, 5, 4, 3, 2, 1, 0},        // bitonic
      {8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7},  // rotated
  };
  for (auto keys : patterns) {
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    net.sort(keys);
    EXPECT_EQ(keys, expect);
  }
}

TEST(SortingNetwork, StagesNeededMatchesRunLengthArgument) {
  SortingNetwork net(16);
  EXPECT_EQ(net.stages_needed(0), 0u);
  EXPECT_EQ(net.stages_needed(1), 0u);
  EXPECT_EQ(net.stages_needed(2), 1u);
  EXPECT_EQ(net.stages_needed(5), 3u);
  EXPECT_EQ(net.stages_needed(8), 3u);
  EXPECT_EQ(net.stages_needed(9), 4u);
  EXPECT_EQ(net.stages_needed(16), 4u);
}

TEST(SortingNetwork, StageSelectSortsPaddedWindows) {
  // §3.3's stage-select claim: with <= n/2 valid keys in the window prefix
  // (tail padded with maximal keys), the final stage can be skipped.
  Xoshiro256 rng(13);
  SortingNetwork net(16);
  for (std::uint32_t valid = 1; valid <= 16; ++valid) {
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<std::uint64_t> keys(16, kInvalidKey);
      for (std::uint32_t i = 0; i < valid; ++i) keys[i] = rng.below(1 << 20);
      auto expect = keys;
      std::sort(expect.begin(), expect.end());
      net.sort_partial(keys, net.stages_needed(valid));
      EXPECT_EQ(keys, expect) << "valid=" << valid;
    }
  }
}

TEST(SortingNetwork, PartialSortWithTooFewStagesCanFail) {
  // Sanity that stage-select is not vacuous: a full window genuinely needs
  // all stages.
  SortingNetwork net(16);
  std::vector<std::uint64_t> keys = {15, 14, 13, 12, 11, 10, 9, 8,
                                     7,  6,  5,  4,  3,  2,  1, 0};
  net.sort_partial(keys, 3);
  EXPECT_FALSE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(SortingNetwork, ComparatorCountBeatsNaivePerStepBound) {
  // Hardware sizing numbers used by the §4.1 ablation bench.
  SortingNetwork net(16);
  EXPECT_EQ(net.max_comparators_per_step(), 8u);
  EXPECT_LE(net.num_comparators(), 63u);
}

}  // namespace
}  // namespace hmcc::coalescer
