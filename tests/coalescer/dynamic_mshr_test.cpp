#include "coalescer/dynamic_mshr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace hmcc::coalescer {
namespace {

CoalescerConfig cfg4() {
  CoalescerConfig cfg;
  cfg.num_mshrs = 4;
  return cfg;
}

CoalescedPacket packet(Addr addr, std::uint32_t bytes,
                       ReqType type = ReqType::kLoad,
                       std::uint64_t first_token = 1) {
  CoalescedPacket p{};
  p.addr = addr;
  p.bytes = bytes;
  p.type = type;
  std::uint64_t token = first_token;
  for (Addr line = addr; line < addr + bytes; line += 64) {
    CoalescerRequest r{};
    r.addr = line;
    r.type = type;
    r.payload_bytes = 8;
    r.token = token++;
    p.constituents.push_back(r);
  }
  return p;
}

TEST(DynMshr, AllocateAndFill) {
  DynamicMshrFile mshr(cfg4());
  const auto res = mshr.try_insert(packet(0x1000, 256));
  ASSERT_TRUE(res.accepted);
  ASSERT_EQ(res.to_issue.size(), 1u);
  EXPECT_EQ(mshr.in_use(), 1u);

  const auto fill = mshr.on_fill(res.to_issue[0].id);
  ASSERT_TRUE(fill.has_value());
  EXPECT_EQ(fill->base, 0x1000u);
  EXPECT_EQ(fill->bytes, 256u);
  ASSERT_EQ(fill->targets.size(), 4u);
  // Equation (2): subentry addresses derive from base + lineID * 64.
  std::set<Addr> lines;
  for (const auto& t : fill->targets) lines.insert(t.line_addr);
  EXPECT_EQ(lines, (std::set<Addr>{0x1000, 0x1040, 0x1080, 0x10C0}));
  EXPECT_EQ(mshr.in_use(), 0u);
}

TEST(DynMshr, Figure6CaseA_SubsetMergesAsSubentries) {
  // MSHR 1 holds a 256 B load; request 1 asks for a 128 B subset.
  DynamicMshrFile mshr(cfg4());
  const auto big = mshr.try_insert(packet(0xA8 * 64, 256, ReqType::kLoad, 1));
  ASSERT_EQ(big.to_issue.size(), 1u);

  const auto sub = mshr.try_insert(packet(0xA8 * 64, 128, ReqType::kLoad, 10));
  ASSERT_TRUE(sub.accepted);
  EXPECT_TRUE(sub.to_issue.empty());  // fully absorbed, no memory request
  EXPECT_EQ(mshr.in_use(), 1u);
  EXPECT_EQ(mshr.stats().full_merges, 1u);

  const auto fill = mshr.on_fill(big.to_issue[0].id);
  ASSERT_TRUE(fill.has_value());
  // 4 original + 2 merged subentries, line IDs 00 and 01 for the merge.
  EXPECT_EQ(fill->targets.size(), 6u);
  const auto merged0 = std::count_if(
      fill->targets.begin(), fill->targets.end(),
      [](const DynMshrTarget& t) { return t.token == 10; });
  const auto merged1 = std::count_if(
      fill->targets.begin(), fill->targets.end(),
      [](const DynMshrTarget& t) { return t.token == 11; });
  EXPECT_EQ(merged0, 1);
  EXPECT_EQ(merged1, 1);
}

TEST(DynMshr, Figure6CaseB_PartialOverlapSplits) {
  // MSHR 1 holds one 64 B line; request 2 spans that line plus the next.
  DynamicMshrFile mshr(cfg4());
  const auto one = mshr.try_insert(packet(0xA8 * 64, 64, ReqType::kLoad, 1));
  ASSERT_EQ(one.to_issue.size(), 1u);

  const auto two = mshr.try_insert(packet(0xA8 * 64, 128, ReqType::kLoad, 20));
  ASSERT_TRUE(two.accepted);
  ASSERT_EQ(two.to_issue.size(), 1u);  // only the non-overlapped remainder
  EXPECT_EQ(two.to_issue[0].addr, 0xA9u * 64);
  EXPECT_EQ(two.to_issue[0].bytes, 64u);
  EXPECT_EQ(mshr.in_use(), 2u);
  EXPECT_EQ(mshr.stats().partial_merges, 1u);

  // The overlapped line (token 20) rides on entry 1.
  const auto fill1 = mshr.on_fill(one.to_issue[0].id);
  ASSERT_TRUE(fill1.has_value());
  EXPECT_EQ(fill1->targets.size(), 2u);
  // The remainder (token 21) completes with entry 2.
  const auto fill2 = mshr.on_fill(two.to_issue[0].id);
  ASSERT_TRUE(fill2.has_value());
  ASSERT_EQ(fill2->targets.size(), 1u);
  EXPECT_EQ(fill2->targets[0].token, 21u);
  EXPECT_EQ(fill2->targets[0].line_addr, 0xA9u * 64);
}

TEST(DynMshr, TypesNeverMerge) {
  DynamicMshrFile mshr(cfg4());
  const auto load = mshr.try_insert(packet(0x1000, 256, ReqType::kLoad));
  ASSERT_EQ(load.to_issue.size(), 1u);
  const auto store = mshr.try_insert(packet(0x1000, 128, ReqType::kStore));
  ASSERT_TRUE(store.accepted);
  EXPECT_EQ(store.to_issue.size(), 1u);  // allocated, not merged
  EXPECT_EQ(mshr.in_use(), 2u);
  EXPECT_EQ(mshr.stats().full_merges, 0u);
}

TEST(DynMshr, FullFileRejectsWithoutSideEffects) {
  DynamicMshrFile mshr(cfg4());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        mshr.try_insert(packet(0x10000u * static_cast<Addr>(i + 1), 64))
            .accepted);
  }
  EXPECT_TRUE(mshr.full());
  const auto rej = mshr.try_insert(packet(0x90000, 64));
  EXPECT_FALSE(rej.accepted);
  EXPECT_TRUE(rej.to_issue.empty());
  EXPECT_EQ(mshr.stats().rejects_full, 1u);
  // Merging into an existing entry still works while full.
  const auto merged = mshr.try_insert(packet(0x10000, 64, ReqType::kLoad, 9));
  EXPECT_TRUE(merged.accepted);
  EXPECT_TRUE(merged.to_issue.empty());
}

TEST(DynMshr, PartialRejectedWhenRemainderNeedsTooManyEntries) {
  CoalescerConfig cfg = cfg4();
  cfg.num_mshrs = 1;
  DynamicMshrFile mshr(cfg);
  ASSERT_TRUE(mshr.try_insert(packet(0x1000, 64)).accepted);
  // Packet overlapping the entry plus a remainder: needs one new entry but
  // none is free -> atomic reject, no subentries attached.
  const auto before = mshr.stats().merged_constituents;
  const auto res = mshr.try_insert(packet(0x1000, 128));
  EXPECT_FALSE(res.accepted);
  EXPECT_EQ(mshr.stats().merged_constituents, before);
}

TEST(DynMshr, NonContiguousRemainderSplitsIntoMultiplePackets) {
  DynamicMshrFile mshr(cfg4());
  // In-flight entry covers the two middle lines of a block.
  const auto mid = mshr.try_insert(packet(0x1040, 128, ReqType::kLoad, 1));
  ASSERT_EQ(mid.to_issue.size(), 1u);
  // A 256 B packet over the whole block: lines 0 and 3 remain, and they are
  // not contiguous -> two 64 B remainder packets.
  const auto res = mshr.try_insert(packet(0x1000, 256, ReqType::kLoad, 10));
  ASSERT_TRUE(res.accepted);
  ASSERT_EQ(res.to_issue.size(), 2u);
  std::set<Addr> addrs{res.to_issue[0].addr, res.to_issue[1].addr};
  EXPECT_EQ(addrs, (std::set<Addr>{0x1000, 0x10C0}));
  EXPECT_EQ(res.to_issue[0].bytes, 64u);
  EXPECT_EQ(res.to_issue[1].bytes, 64u);
}

TEST(DynMshr, MergeOnlyAcceptsOnlyFullCoverage) {
  DynamicMshrFile mshr(cfg4());
  const auto big = mshr.try_insert(packet(0x1000, 128, ReqType::kLoad, 1));
  ASSERT_EQ(big.to_issue.size(), 1u);
  EXPECT_TRUE(mshr.try_merge_only(packet(0x1000, 64, ReqType::kLoad, 5)));
  EXPECT_FALSE(mshr.try_merge_only(packet(0x1000, 256, ReqType::kLoad, 6)));
  EXPECT_FALSE(mshr.try_merge_only(packet(0x4000, 64, ReqType::kLoad, 7)));
  EXPECT_EQ(mshr.in_use(), 1u);
}

TEST(DynMshr, MergeDisabledByConfig) {
  CoalescerConfig cfg = cfg4();
  cfg.enable_mshr_merge = false;
  DynamicMshrFile mshr(cfg);
  ASSERT_TRUE(mshr.try_insert(packet(0x1000, 256)).accepted);
  const auto res = mshr.try_insert(packet(0x1000, 64));
  ASSERT_TRUE(res.accepted);
  EXPECT_EQ(res.to_issue.size(), 1u);  // duplicate fetch instead of merge
  EXPECT_FALSE(mshr.try_merge_only(packet(0x1000, 64)));
}

TEST(DynMshr, SubentryCapacityBoundsMerging) {
  CoalescerConfig cfg = cfg4();
  cfg.max_subentries = 5;  // entry starts with 4 subentries for 256 B
  DynamicMshrFile mshr(cfg);
  ASSERT_TRUE(mshr.try_insert(packet(0x1000, 256)).accepted);
  // One more subentry fits...
  EXPECT_TRUE(mshr.try_merge_only(packet(0x1000, 64, ReqType::kLoad, 9)));
  // ...but the next does not.
  EXPECT_FALSE(mshr.try_merge_only(packet(0x1000, 64, ReqType::kLoad, 10)));
}

TEST(DynMshr, FillUnknownIdReturnsNothing) {
  DynamicMshrFile mshr(cfg4());
  EXPECT_FALSE(mshr.on_fill(12345).has_value());
}

TEST(DynMshr, PropertyTokensNeverLostAcrossRandomTraffic) {
  CoalescerConfig cfg;
  cfg.num_mshrs = 8;
  DynamicMshrFile mshr(cfg);
  Xoshiro256 rng(41);
  std::multiset<std::uint64_t> outstanding_tokens;
  std::multiset<std::uint64_t> completed_tokens;
  std::vector<ReqId> inflight;
  std::uint64_t next_token = 1;

  for (int step = 0; step < 3000; ++step) {
    if (rng.chance(0.55) || inflight.empty()) {
      const std::uint32_t lines = 1u << rng.below(3);
      const Addr addr =
          rng.below(256) * 256 + rng.below(4 / lines + 1) * lines * 64;
      CoalescedPacket p =
          packet(addr, lines * 64,
                 rng.chance(0.25) ? ReqType::kStore : ReqType::kLoad,
                 next_token);
      const auto res = mshr.try_insert(p);
      if (res.accepted) {
        for (const auto& c : p.constituents) {
          outstanding_tokens.insert(c.token);
        }
        next_token += lines;
        for (const auto& np : res.to_issue) inflight.push_back(np.id);
      }
    } else {
      const auto idx = rng.below(inflight.size());
      const auto fill = mshr.on_fill(inflight[idx]);
      ASSERT_TRUE(fill.has_value());
      for (const auto& t : fill->targets) completed_tokens.insert(t.token);
      inflight.erase(inflight.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    EXPECT_LE(mshr.in_use(), mshr.capacity());
  }
  // Drain.
  for (ReqId id : inflight) {
    const auto fill = mshr.on_fill(id);
    ASSERT_TRUE(fill.has_value());
    for (const auto& t : fill->targets) completed_tokens.insert(t.token);
  }
  EXPECT_EQ(mshr.in_use(), 0u);
  EXPECT_EQ(outstanding_tokens, completed_tokens);
}

}  // namespace
}  // namespace hmcc::coalescer
