#include "coalescer/coalescer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace hmcc::coalescer {
namespace {

/// Harness: a fake memory that answers every issued packet after a fixed
/// latency, plus completion bookkeeping per token.
struct Harness {
  explicit Harness(CoalescerConfig cfg, Cycle mem_latency = 300)
      : coalescer(kernel, cfg,
                  [this, mem_latency](const CoalescedPacket& pkt) {
                    issued.push_back(pkt);
                    kernel.schedule(mem_latency, [this, id = pkt.id] {
                      coalescer.on_memory_response(id);
                    });
                  },
                  [this](Addr line, std::uint64_t token) {
                    completions.emplace_back(line, token);
                  }) {}

  Kernel kernel;
  MemoryCoalescer coalescer;
  std::vector<CoalescedPacket> issued;
  std::vector<std::pair<Addr, std::uint64_t>> completions;

  void submit(Addr addr, ReqType type = ReqType::kLoad,
              std::uint64_t token = 0) {
    CoalescerRequest r{};
    r.addr = addr;
    r.type = type;
    r.payload_bytes = 8;
    r.token = token;
    coalescer.submit(r);
  }
};

CoalescerConfig full_cfg() {
  CoalescerConfig cfg;  // both phases on, no bypass
  return cfg;
}

TEST(Coalescer, ContiguousWindowCoalescesTo256B) {
  Harness h(full_cfg());
  for (std::uint64_t i = 0; i < 16; ++i) {
    h.submit(0x1000 + i * 64, ReqType::kLoad, i);
  }
  h.kernel.run();
  // 16 contiguous lines = 1024 B = four 256 B packets.
  ASSERT_EQ(h.issued.size(), 4u);
  for (const auto& p : h.issued) EXPECT_EQ(p.bytes, 256u);
  EXPECT_EQ(h.completions.size(), 16u);
  EXPECT_TRUE(h.coalescer.idle());
  EXPECT_DOUBLE_EQ(h.coalescer.stats().coalescing_efficiency(), 0.75);
}

TEST(Coalescer, TimeoutFlushesPartialWindow) {
  Harness h(full_cfg());
  h.submit(0x1000, ReqType::kLoad, 1);
  h.submit(0x1040, ReqType::kLoad, 2);
  h.kernel.run();  // nothing else arrives; timeout must fire
  ASSERT_EQ(h.issued.size(), 1u);
  EXPECT_EQ(h.issued[0].bytes, 128u);
  EXPECT_EQ(h.completions.size(), 2u);
  // The flush happened only after the timeout elapsed.
  EXPECT_GE(h.issued[0].ready_at, full_cfg().timeout);
}

TEST(Coalescer, CompletionTokensAndLinesCorrect) {
  Harness h(full_cfg());
  std::map<std::uint64_t, Addr> expect;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const Addr line = 0x8000 + ((i * 7) % 16) * 64;  // shuffled lines
    h.submit(line, ReqType::kLoad, 100 + i);
    expect[100 + i] = line;
  }
  h.kernel.run();
  ASSERT_EQ(h.completions.size(), 16u);
  for (const auto& [line, token] : h.completions) {
    ASSERT_TRUE(expect.count(token));
    EXPECT_EQ(line, expect[token]);
  }
}

TEST(Coalescer, StoresAndLoadsSeparated) {
  Harness h(full_cfg());
  for (std::uint64_t i = 0; i < 8; ++i) {
    h.submit(0x2000 + i * 64, ReqType::kLoad, i);
  }
  for (std::uint64_t i = 0; i < 8; ++i) {
    h.submit(0x2000 + i * 64, ReqType::kStore, 50 + i);
  }
  h.kernel.run();
  ASSERT_EQ(h.issued.size(), 4u);  // 2 load packets + 2 store packets
  int loads = 0;
  int stores = 0;
  for (const auto& p : h.issued) {
    EXPECT_EQ(p.bytes, 256u);
    (p.type == ReqType::kLoad ? loads : stores)++;
  }
  EXPECT_EQ(loads, 2);
  EXPECT_EQ(stores, 2);
}

TEST(Coalescer, SecondPhaseMergesInflightDuplicates) {
  Harness h(full_cfg());
  // First window: 4 lines -> one 256 B request, long memory latency.
  for (std::uint64_t i = 0; i < 4; ++i) {
    h.submit(0x3000 + i * 64, ReqType::kLoad, i);
  }
  // Let the timeout flush and the request get issued, then resubmit the
  // same lines while the first packet is still in flight.
  h.kernel.run_until(100);
  ASSERT_EQ(h.issued.size(), 1u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    h.submit(0x3000 + i * 64, ReqType::kLoad, 10 + i);
  }
  h.kernel.run();
  // The second batch merged into the in-flight MSHR entry: still 1 request.
  EXPECT_EQ(h.issued.size(), 1u);
  EXPECT_EQ(h.completions.size(), 8u);
  EXPECT_GE(h.coalescer.mshrs().stats().full_merges, 1u);
}

TEST(Coalescer, ConventionalModeIssuesLineSizedRequests) {
  CoalescerConfig cfg = full_cfg();
  cfg.enable_dmc = false;
  Harness h(cfg);
  for (std::uint64_t i = 0; i < 16; ++i) {
    h.submit(0x4000 + i * 64, ReqType::kLoad, i);
  }
  h.kernel.run();
  ASSERT_EQ(h.issued.size(), 16u);
  for (const auto& p : h.issued) EXPECT_EQ(p.bytes, 64u);
  EXPECT_DOUBLE_EQ(h.coalescer.stats().coalescing_efficiency(), 0.0);
}

TEST(Coalescer, ConventionalModeStillMergesSameLine) {
  CoalescerConfig cfg = full_cfg();
  cfg.enable_dmc = false;
  Harness h(cfg);
  h.submit(0x5000, ReqType::kLoad, 1);
  h.submit(0x5000, ReqType::kLoad, 2);  // while the first is in flight
  h.kernel.run();
  EXPECT_EQ(h.issued.size(), 1u);
  EXPECT_EQ(h.completions.size(), 2u);
  EXPECT_GT(h.coalescer.stats().coalescing_efficiency(), 0.0);
}

TEST(Coalescer, DmcOnlyModeNeverMergesInMshrs) {
  CoalescerConfig cfg = full_cfg();
  cfg.enable_mshr_merge = false;
  Harness h(cfg);
  for (std::uint64_t i = 0; i < 4; ++i) {
    h.submit(0x6000 + i * 64, ReqType::kLoad, i);
  }
  h.kernel.run_until(100);
  for (std::uint64_t i = 0; i < 4; ++i) {
    h.submit(0x6000 + i * 64, ReqType::kLoad, 10 + i);
  }
  h.kernel.run();
  EXPECT_EQ(h.issued.size(), 2u);  // duplicate fetch, no phase-2 merge
  EXPECT_EQ(h.completions.size(), 8u);
}

TEST(Coalescer, BypassSkipsPipelineWhenIdle) {
  CoalescerConfig cfg = full_cfg();
  cfg.enable_bypass = true;
  Harness h(cfg);
  h.submit(0x7000, ReqType::kLoad, 1);
  // With bypass the request must be issued immediately (cycle 0), not after
  // the timeout.
  h.kernel.run_until(1);
  ASSERT_EQ(h.issued.size(), 1u);
  EXPECT_EQ(h.coalescer.stats().bypassed, 1u);
  h.kernel.run();
  EXPECT_EQ(h.completions.size(), 1u);
}

TEST(Coalescer, BypassDisengagesUnderLoad) {
  CoalescerConfig cfg = full_cfg();
  cfg.enable_bypass = true;
  cfg.num_mshrs = 2;
  Harness h(cfg, /*mem_latency=*/5000);
  // Two bypassed requests fill both MSHRs...
  h.submit(0x10000, ReqType::kLoad, 1);
  h.submit(0x20000, ReqType::kLoad, 2);
  // ...so later requests must take the coalescing path.
  for (std::uint64_t i = 0; i < 16; ++i) {
    h.submit(0x30000 + i * 64, ReqType::kLoad, 10 + i);
  }
  h.kernel.run();
  EXPECT_EQ(h.coalescer.stats().bypassed, 2u);
  EXPECT_EQ(h.completions.size(), 18u);
  // The 16 contiguous lines coalesced into 4 x 256 B.
  EXPECT_EQ(h.issued.size(), 2u + 4u);
}

TEST(Coalescer, CrqBackpressureEventuallyDrains) {
  CoalescerConfig cfg = full_cfg();
  cfg.num_mshrs = 2;  // tiny CRQ and MSHR file
  Harness h(cfg, /*mem_latency=*/2000);
  for (std::uint64_t i = 0; i < 64; ++i) {
    h.submit(0x40000 + i * 4096, ReqType::kLoad, i);  // uncoalescable
  }
  h.kernel.run();
  EXPECT_EQ(h.issued.size(), 64u);
  EXPECT_EQ(h.completions.size(), 64u);
  EXPECT_TRUE(h.coalescer.idle());
}

TEST(Coalescer, FenceDrainsBeforeLaterRequests) {
  Harness h(full_cfg());
  for (std::uint64_t i = 0; i < 4; ++i) {
    h.submit(0x50000 + i * 64, ReqType::kLoad, i);
  }
  h.coalescer.submit_fence();
  for (std::uint64_t i = 0; i < 4; ++i) {
    h.submit(0x60000 + i * 64, ReqType::kLoad, 10 + i);
  }
  h.kernel.run();
  EXPECT_EQ(h.completions.size(), 8u);
  EXPECT_EQ(h.coalescer.stats().fences, 1u);
  ASSERT_EQ(h.issued.size(), 2u);
  // All pre-fence completions strictly precede any post-fence issue.
  EXPECT_EQ(h.issued[0].addr, 0x50000u);
  EXPECT_EQ(h.issued[1].addr, 0x60000u);
  EXPECT_TRUE(h.coalescer.idle());
}

TEST(Coalescer, LatencyStatsPopulated) {
  Harness h(full_cfg());
  for (std::uint64_t i = 0; i < 32; ++i) {
    h.submit(0x70000 + i * 64, ReqType::kLoad, i);
  }
  h.kernel.run();
  const CoalescerStats& s = h.coalescer.stats();
  EXPECT_EQ(s.raw_requests, 32u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_GT(s.dmc_latency.mean(), 0.0);
  EXPECT_GT(s.request_latency.mean(), 0.0);
  EXPECT_EQ(s.size_256, 8u);
}

TEST(Coalescer, PropertyRandomTrafficNeverLosesRequests) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    CoalescerConfig cfg = full_cfg();
    cfg.enable_bypass = trial % 2 == 0;
    cfg.num_mshrs = trial % 3 == 0 ? 4 : 16;
    Harness h(cfg, /*mem_latency=*/100 + rng.below(400));
    std::multiset<std::uint64_t> tokens;
    const std::uint64_t n = 200 + rng.below(300);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Addr addr = rng.below(512) * 64;
      const ReqType t = rng.chance(0.3) ? ReqType::kStore : ReqType::kLoad;
      h.submit(addr, t, i);
      tokens.insert(i);
      if (rng.chance(0.01)) h.coalescer.submit_fence();
    }
    h.kernel.run();
    std::multiset<std::uint64_t> done;
    for (const auto& [line, token] : h.completions) done.insert(token);
    EXPECT_EQ(done, tokens) << "trial " << trial;
    EXPECT_TRUE(h.coalescer.idle());
    EXPECT_LE(h.issued.size(), n);
  }
}

}  // namespace
}  // namespace hmcc::coalescer
