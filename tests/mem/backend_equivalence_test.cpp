// Differential pins across the memory-backend seam:
//  * mem=hybrid with an unconfigured fast tier is the bare HMC — same
//    report, same metrics text modulo the hybrid's own hmcc_mem_ families;
//  * scheme=migrate with an unreachable hot_threshold degenerates to the
//    static split;
//  * turning the coalescer on/off under scheme=migrate changes only the
//    intended counters, and every demand packet lands in exactly one tier;
//  * the default mem=hmc run still renders the exact Prometheus text the
//    pre-seam simulator produced (fixtures in tests/golden/preseam);
//  * the pool= knob (coalescer + cache-hierarchy arenas) changes nothing
//    observable.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "system/config_bridge.hpp"
#include "system/runner.hpp"

namespace hmcc::system {
namespace {

trace::MultiTrace random_trace(std::uint64_t seed, std::uint32_t cores,
                               std::uint64_t records) {
  Xoshiro256 rng(seed);
  trace::MultiTrace mt;
  mt.per_core.resize(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    for (std::uint64_t i = 0; i < records; ++i) {
      const double roll = rng.uniform();
      Addr addr;
      if (roll < 0.4) {
        addr = (1ULL << 30) + (i * cores + c) * 64;  // cyclic-sequential
      } else if (roll < 0.7) {
        addr = (1ULL << 31) + rng.below(1 << 16) * 8;  // shared random
      } else {
        addr = (1ULL << 32) + rng.below(1 << 12) * 4096 + rng.below(64);
      }
      const auto size = static_cast<std::uint32_t>(1u << rng.below(4));
      if (rng.chance(0.3)) {
        mt.per_core[c].push_back(trace::TraceRecord::store(addr, size));
      } else {
        mt.per_core[c].push_back(trace::TraceRecord::load(addr, size));
      }
    }
  }
  return mt;
}

struct Observed {
  SystemReport report;
  std::string metrics;
};

Observed observe(SystemConfig cfg, const trace::MultiTrace& mt) {
  System sys(std::move(cfg));
  Observed o;
  o.report = sys.run(mt);
  if (const obs::MetricsRegistry* reg = sys.metrics()) {
    o.metrics = reg->render_prometheus();
  }
  return o;
}

SystemConfig base_cfg(std::uint32_t cores) {
  SystemConfig cfg = paper_system_config();
  cfg.hierarchy.num_cores = cores;
  cfg.obs.metrics = true;
  cfg.obs.sample_interval = 500;
  apply_mode(cfg, CoalescerMode::kFull);
  return cfg;
}

/// Drop every line mentioning a metric family with the given prefix
/// (HELP/TYPE headers and samples all contain the family name).
std::string strip_families(const std::string& text, const std::string& pre) {
  std::istringstream in(text);
  std::string line;
  std::string out;
  while (std::getline(in, line)) {
    if (line.find(pre) != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

TEST(BackendSeam, DegenerateHybridIsTheBareHmc) {
  const auto mt = random_trace(11, 4, 800);
  const Observed hmc = observe(base_cfg(4), mt);
  ASSERT_TRUE(hmc.report.drained);

  SystemConfig cfg = base_cfg(4);
  cfg.mem.backend = mem::BackendKind::kHybrid;  // fast_pages stays 0
  const Observed hyb = observe(cfg, mt);
  ASSERT_TRUE(hyb.report.drained);

  EXPECT_EQ(hyb.report.runtime, hmc.report.runtime);
  EXPECT_EQ(hyb.report.memory_requests, hmc.report.memory_requests);
  EXPECT_EQ(hyb.report.hmc.transferred_bytes, hmc.report.hmc.transferred_bytes);
  EXPECT_EQ(hyb.report.hmc.row_hits, hmc.report.hmc.row_hits);
  EXPECT_EQ(hyb.report.mem_tier.slow_accesses, 0u);
  EXPECT_EQ(hyb.report.mem_tier.fast_hits, hyb.report.memory_requests);
  // Identical text once the hybrid's own families are removed — the shared
  // families (hmcc_hmc_*, coalescer, caches, system) must not move at all.
  EXPECT_EQ(strip_families(hyb.metrics, "hmcc_mem_"), hmc.metrics);
}

TEST(BackendSeam, UnreachableHotThresholdDegeneratesToStatic) {
  const auto mt = random_trace(23, 3, 700);
  SystemConfig mig = base_cfg(3);
  mig.mem.backend = mem::BackendKind::kHybrid;
  mig.mem.scheme = mem::HybridScheme::kMigrate;
  mig.mem.fast_pages = 64;
  mig.mem.tag_ways = 8;
  mig.mem.hot_threshold = 1u << 20;  // nothing is ever this hot
  const Observed m = observe(mig, mt);
  ASSERT_TRUE(m.report.drained);
  EXPECT_EQ(m.report.mem_tier.promotions, 0u);
  EXPECT_EQ(m.report.mem_tier.migration_packets, 0u);

  SystemConfig sta = mig;
  sta.mem.scheme = mem::HybridScheme::kStatic;
  const Observed s = observe(sta, mt);
  ASSERT_TRUE(s.report.drained);

  EXPECT_EQ(m.report.runtime, s.report.runtime);
  EXPECT_EQ(m.report.cpu_accesses, s.report.cpu_accesses);
  EXPECT_EQ(m.report.memory_requests, s.report.memory_requests);
  EXPECT_EQ(m.report.mem_tier.fast_hits, s.report.mem_tier.fast_hits);
  EXPECT_EQ(m.report.mem_tier.slow_accesses, s.report.mem_tier.slow_accesses);
}

TEST(BackendSeam, CoalescingUnderMigrateChangesOnlyIntendedCounters) {
  const auto mt = random_trace(37, 4, 900);
  auto tiered = [](CoalescerMode mode) {
    SystemConfig cfg = base_cfg(4);
    cfg.mem.backend = mem::BackendKind::kHybrid;
    cfg.mem.scheme = mem::HybridScheme::kMigrate;
    cfg.mem.fast_pages = 256;
    cfg.mem.hot_threshold = 4;
    cfg.mem.migrate_epoch = 20000;
    apply_mode(cfg, mode);
    return cfg;
  };
  const Observed conv = observe(tiered(CoalescerMode::kConventional), mt);
  const Observed full = observe(tiered(CoalescerMode::kFull), mt);
  ASSERT_TRUE(conv.report.drained);
  ASSERT_TRUE(full.report.drained);

  // The replayed access stream is untouched by the coalescing mode. (LLC
  // miss/writeback counts are NOT pinned: fills land at completion time,
  // so coalescing legitimately shifts eviction order by a few lines.)
  EXPECT_EQ(full.report.cpu_accesses, conv.report.cpu_accesses);
  // The memory side is where it is allowed (and expected) to differ.
  EXPECT_LE(full.report.memory_requests, conv.report.memory_requests);
  // Every demand packet lands in exactly one tier, in both modes.
  for (const Observed* o : {&conv, &full}) {
    EXPECT_EQ(o->report.mem_tier.fast_hits + o->report.mem_tier.slow_accesses,
              o->report.memory_requests);
  }
}

TEST(BackendSeam, DefaultBackendMatchesPreSeamPrometheusFixtures) {
  // The fixtures were rendered by the pre-seam simulator via
  //   trace_workbench cmd=run workload=W seed=S accesses=2500 cores=4 \
  //     metrics=1 sample_interval=700 metrics_out=...
  // Reproducing them bit-for-bit pins every shared stat family — names,
  // help strings, ordering, and values — across the refactor.
  for (const char* workload : {"stream", "sg"}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      Config cli;
      cli.set("metrics", "1");
      cli.set("sample_interval", "700");
      cli.set("cores", "4");
      SystemConfig cfg = config_from_cli(cli);

      workloads::WorkloadParams params;
      params.num_cores = cfg.hierarchy.num_cores;
      params.accesses_per_core = 2500;
      params.seed = seed;
      auto gen = workloads::make_workload(workload);
      ASSERT_NE(gen, nullptr);
      const trace::MultiTrace mt = gen->generate(params);

      cfg.hierarchy.num_cores = static_cast<std::uint32_t>(mt.num_cores());
      apply_mode(cfg, cfg.mode);
      System sys(cfg);
      (void)sys.run(mt);
      ASSERT_NE(sys.metrics(), nullptr);
      const std::string text = sys.metrics()->render_prometheus();

      const std::string path = std::string(HMCC_PRESEAM_DIR) + "/" +
                               workload + "_s" + std::to_string(seed) +
                               ".prom";
      std::FILE* f = std::fopen(path.c_str(), "rb");
      ASSERT_NE(f, nullptr) << path;
      std::string fixture;
      char buf[4096];
      std::size_t got;
      while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
        fixture.append(buf, got);
      }
      std::fclose(f);
      EXPECT_EQ(text, fixture)
          << workload << " seed " << seed << " drifted from " << path;
    }
  }
}

TEST(BackendSeam, ArenaPoolsChangeNothingObservable) {
  const auto mt = random_trace(53, 4, 800);
  SystemConfig off = base_cfg(4);
  const Observed a = observe(off, mt);
  ASSERT_TRUE(a.report.drained);

  SystemConfig on = base_cfg(4);
  on.coalescer.enable_pool = true;
  on.hierarchy.enable_pool = true;
  const Observed b = observe(on, mt);
  ASSERT_TRUE(b.report.drained);

  EXPECT_EQ(b.report.runtime, a.report.runtime);
  EXPECT_EQ(b.report.cpu_accesses, a.report.cpu_accesses);
  EXPECT_EQ(b.report.memory_requests, a.report.memory_requests);
  EXPECT_EQ(b.metrics, a.metrics);
}

}  // namespace
}  // namespace hmcc::system
