// HybridBackend tag-table and migration-engine unit tests: fills, hits,
// LRU eviction with dirty write-back, stall-behind-fill waiters, epoch
// promotion, and the static split — all observed through tier_stats()
// and the completion callback ids.
#include "mem/hybrid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace hmcc::mem {
namespace {

coalescer::CoalescedPacket pkt(ReqId id, Addr addr,
                               ReqType type = ReqType::kLoad) {
  coalescer::CoalescedPacket p{};
  p.id = id;
  p.addr = addr;
  p.bytes = 64;
  p.type = type;
  return p;
}

struct Harness {
  Kernel kernel;
  std::vector<ReqId> completed;
  HybridBackend backend;

  explicit Harness(const MemConfig& cfg)
      : backend(kernel, hmc::HmcConfig{}, cfg,
                [this](ReqId id) { completed.push_back(id); }) {}

  void run_one(const coalescer::CoalescedPacket& p) {
    backend.submit(p);
    kernel.run();
  }
  [[nodiscard]] bool saw(ReqId id) const {
    return std::find(completed.begin(), completed.end(), id) !=
           completed.end();
  }
};

MemConfig tiered(HybridScheme scheme) {
  MemConfig m;
  m.backend = BackendKind::kHybrid;
  m.scheme = scheme;
  m.page_bytes = 4096;
  m.fast_pages = 4;  // 2 sets x 2 ways
  m.tag_ways = 2;
  m.migrate_epoch = 2000;
  m.hot_threshold = 2;
  EXPECT_TRUE(m.valid());
  return m;
}

Addr page_addr(std::uint64_t page) { return page * 4096; }

TEST(HybridCache, MissFillsThenHitsWithoutRefill) {
  Harness h(tiered(HybridScheme::kCache));
  h.run_one(pkt(1, page_addr(0)));
  EXPECT_TRUE(h.saw(1));
  MemTierStats t = h.backend.tier_stats();
  EXPECT_EQ(t.page_fills, 1u);
  EXPECT_EQ(t.fast_hits, 1u);  // the waiter, released at fill time
  EXPECT_EQ(t.slow_accesses, 0u);  // fills are migration, not demand
  EXPECT_EQ(t.migration_bytes, 4096u);

  h.run_one(pkt(2, page_addr(0) + 128));
  t = h.backend.tier_stats();
  EXPECT_TRUE(h.saw(2));
  EXPECT_EQ(t.page_fills, 1u);  // resident: no second fill
  EXPECT_EQ(t.fast_hits, 2u);
  EXPECT_EQ(h.backend.outstanding(), 0u);
}

TEST(HybridCache, DemandsStallBehindAnInFlightFill) {
  Harness h(tiered(HybridScheme::kCache));
  h.backend.submit(pkt(1, page_addr(0)));
  h.backend.submit(pkt(2, page_addr(0) + 64));  // same page, fill pending
  EXPECT_GE(h.backend.outstanding(), 2u);       // stalled waiters count
  h.kernel.run();
  EXPECT_TRUE(h.saw(1));
  EXPECT_TRUE(h.saw(2));
  const MemTierStats t = h.backend.tier_stats();
  EXPECT_EQ(t.page_fills, 1u);
  EXPECT_EQ(t.fast_hits, 2u);
  EXPECT_EQ(h.backend.outstanding(), 0u);
}

TEST(HybridCache, LruEvictionWritesBackDirtyVictims) {
  Harness h(tiered(HybridScheme::kCache));
  // num_sets = 2, so even pages all map to set 0. Fill both ways...
  h.run_one(pkt(1, page_addr(0), ReqType::kStore));  // dirty
  h.run_one(pkt(2, page_addr(2)));                   // clean
  // ...touch page 2 so page 0 is the LRU way, then force an eviction.
  h.run_one(pkt(3, page_addr(2) + 64));
  h.run_one(pkt(4, page_addr(4)));
  const MemTierStats t = h.backend.tier_stats();
  EXPECT_EQ(t.page_fills, 3u);
  EXPECT_EQ(t.demotions, 1u);
  EXPECT_EQ(t.dirty_writebacks, 1u);  // page 0 went back dirty
  // Page 2 must still be resident (page 0 was the victim).
  h.run_one(pkt(5, page_addr(2)));
  EXPECT_EQ(h.backend.tier_stats().page_fills, 3u);
  // 3 fills + 1 write-back pages moved.
  EXPECT_EQ(t.migration_bytes, 4u * 4096u);
}

TEST(HybridMigrate, HotSlowPageIsPromotedAtTheEpoch) {
  Harness h(tiered(HybridScheme::kMigrate));
  // Page 1 is odd = slow-homed. Touch it hot_threshold times inside one
  // epoch (kernel.run() drains past the epoch boundary, so both touches
  // go in before running).
  h.backend.submit(pkt(1, page_addr(1)));
  h.backend.submit(pkt(2, page_addr(1) + 64));
  h.kernel.run();
  MemTierStats t = h.backend.tier_stats();
  EXPECT_EQ(t.slow_accesses, 2u);
  EXPECT_GE(t.epochs, 1u);
  EXPECT_EQ(t.promotions, 1u);
  EXPECT_TRUE(h.saw(1));
  EXPECT_TRUE(h.saw(2));

  // The promoted page now serves from the fast tier.
  const std::uint64_t fast_before = t.fast_hits;
  h.run_one(pkt(4, page_addr(1) + 128));
  t = h.backend.tier_stats();
  EXPECT_EQ(t.fast_hits, fast_before + 1);
  EXPECT_EQ(t.slow_accesses, 2u);
}

TEST(HybridMigrate, ColdSlowPagesStaySlow) {
  Harness h(tiered(HybridScheme::kMigrate));
  h.run_one(pkt(1, page_addr(1)));  // one touch < hot_threshold
  h.run_one(pkt(2, page_addr(3)));
  const MemTierStats t = h.backend.tier_stats();
  EXPECT_EQ(t.promotions, 0u);
  EXPECT_EQ(t.slow_accesses, 2u);
  EXPECT_TRUE(h.saw(1));
  EXPECT_TRUE(h.saw(2));
}

TEST(HybridStatic, EvenPagesFastOddPagesSlow) {
  Harness h(tiered(HybridScheme::kStatic));
  h.run_one(pkt(1, page_addr(0)));
  h.run_one(pkt(2, page_addr(1)));
  const MemTierStats t = h.backend.tier_stats();
  EXPECT_EQ(t.fast_hits, 1u);
  EXPECT_EQ(t.slow_accesses, 1u);
  EXPECT_EQ(t.page_fills, 0u);
  EXPECT_EQ(t.migration_packets, 0u);
  EXPECT_TRUE(h.saw(1));
  EXPECT_TRUE(h.saw(2));
  EXPECT_NEAR(t.fast_hit_rate(), 0.5, 1e-9);
}

TEST(HybridDegenerate, UnboundedFastTierNeverTouchesTheSlowDevice) {
  MemConfig m;
  m.backend = BackendKind::kHybrid;
  m.fast_pages = 0;  // the CI byte-identity degenerate point
  Harness h(m);
  h.run_one(pkt(1, page_addr(1)));  // odd page: would be slow if tiered
  h.run_one(pkt(2, page_addr(12345)));
  const MemTierStats t = h.backend.tier_stats();
  EXPECT_EQ(t.fast_hits, 2u);
  EXPECT_EQ(t.slow_accesses, 0u);
  EXPECT_EQ(t.migration_packets, 0u);
  EXPECT_TRUE(h.saw(1));
  EXPECT_TRUE(h.saw(2));
}

}  // namespace
}  // namespace hmcc::mem
