// SlowTierDevice timing unit tests: the capacity tier's row-buffer state
// machine must charge exactly the configured activate/column/precharge
// costs, interleave rows round-robin across channels, and never exceed
// its own worst_case_delay() bound (which sizes the event ring).
#include "mem/slow_tier.hpp"

#include <gtest/gtest.h>

namespace hmcc::mem {
namespace {

SlowTierConfig small_cfg() {
  SlowTierConfig c;
  c.num_channels = 2;
  c.ctrl_latency = 10;
  c.t_rcd = 20;
  c.t_cl = 30;
  c.t_rp = 40;
  c.t_column_burst = 4;
  c.row_bytes = 1024;
  return c;
}

TEST(SlowTier, ColdAccessPaysActivateColumnAndBurst) {
  Kernel kernel;
  SlowTierDevice dev(kernel, small_cfg());
  Cycle done_at = 0;
  dev.submit(0, 64, ReqType::kLoad, [&] { done_at = kernel.now(); });
  EXPECT_EQ(dev.outstanding(), 1u);
  kernel.run();
  // ctrl(10) + activate(20) + column(30) + 2 columns x burst(4).
  EXPECT_EQ(done_at, Cycle{10 + 20 + 30 + 2 * 4});
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().row_activations, 1u);
  EXPECT_EQ(dev.stats().row_hits, 0u);
  EXPECT_EQ(dev.outstanding(), 0u);
}

TEST(SlowTier, OpenRowHitSkipsActivate) {
  Kernel kernel;
  SlowTierDevice dev(kernel, small_cfg());
  dev.submit(0, 64, ReqType::kLoad, [] {});
  kernel.run();
  const Cycle before = kernel.now();
  Cycle done_at = 0;
  dev.submit(512, 64, ReqType::kLoad, [&] { done_at = kernel.now(); });
  kernel.run();
  // Same 1 KiB row on the same channel: only ctrl + column + burst.
  EXPECT_EQ(done_at - before, Cycle{10 + 30 + 2 * 4});
  EXPECT_EQ(dev.stats().row_hits, 1u);
}

TEST(SlowTier, RowConflictPaysPrechargeThenActivate) {
  Kernel kernel;
  SlowTierDevice dev(kernel, small_cfg());
  dev.submit(0, 64, ReqType::kLoad, [] {});
  kernel.run();
  const Cycle before = kernel.now();
  Cycle done_at = 0;
  // global_row 2 lands on channel 0 again (2 % 2) with a different row.
  dev.submit(2048, 64, ReqType::kStore, [&] { done_at = kernel.now(); });
  kernel.run();
  EXPECT_EQ(done_at - before, Cycle{10 + 40 + 20 + 30 + 2 * 4});
  EXPECT_EQ(dev.stats().row_conflicts, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
}

TEST(SlowTier, ChannelsServeDisjointRowsInParallel) {
  Kernel kernel;
  SlowTierDevice dev(kernel, small_cfg());
  // global_row 0 -> channel 0, global_row 1 -> channel 1: submitted in the
  // same cycle, both complete at the unloaded single-access latency.
  Cycle a = 0;
  Cycle b = 0;
  dev.submit(0, 64, ReqType::kLoad, [&] { a = kernel.now(); });
  dev.submit(1024, 64, ReqType::kLoad, [&] { b = kernel.now(); });
  kernel.run();
  EXPECT_EQ(a, Cycle{68});
  EXPECT_EQ(b, Cycle{68});

  // Same channel instead: the second access queues behind busy_until.
  Kernel k2;
  SlowTierDevice dev2(k2, small_cfg());
  Cycle c = 0;
  Cycle d = 0;
  dev2.submit(0, 64, ReqType::kLoad, [&] { c = k2.now(); });
  dev2.submit(512, 64, ReqType::kLoad, [&] { d = k2.now(); });
  k2.run();
  EXPECT_EQ(c, Cycle{68});
  EXPECT_EQ(d, Cycle{68 + 30 + 2 * 4});  // row hit, but serialized
}

TEST(SlowTier, ClosedPagePolicyReactivatesEveryAccess) {
  Kernel kernel;
  SlowTierConfig cfg = small_cfg();
  cfg.closed_page = true;
  SlowTierDevice dev(kernel, cfg);
  dev.submit(0, 64, ReqType::kLoad, [] {});
  kernel.run();
  dev.submit(512, 64, ReqType::kLoad, [] {});
  kernel.run();
  EXPECT_EQ(dev.stats().row_hits, 0u);
  EXPECT_EQ(dev.stats().row_activations, 2u);
}

TEST(SlowTier, UnloadedLatencyNeverExceedsWorstCaseBound) {
  for (const bool closed : {false, true}) {
    SlowTierConfig cfg = small_cfg();
    cfg.closed_page = closed;
    const Cycle bound = SlowTierDevice::worst_case_delay(cfg);
    Kernel kernel;
    SlowTierDevice dev(kernel, cfg);
    // Conflict path with the largest packet: the costliest single access.
    dev.submit(0, 64, ReqType::kLoad, [] {});
    kernel.run();
    const Cycle before = kernel.now();
    Cycle done_at = 0;
    dev.submit(2048, hmcspec::kMaxRequestBytes, ReqType::kLoad,
               [&] { done_at = kernel.now(); });
    kernel.run();
    EXPECT_LE(done_at - before, bound) << "closed_page=" << closed;
  }
}

}  // namespace
}  // namespace hmcc::mem
