#include "riscv/isa.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hmcc::riscv {
namespace {

TEST(Isa, DecodeKnownWords) {
  // addi a0, a0, 1  == 0x00150513
  Instruction i = decode(0x00150513);
  EXPECT_EQ(i.op, Op::kAddi);
  EXPECT_EQ(i.rd, 10);
  EXPECT_EQ(i.rs1, 10);
  EXPECT_EQ(i.imm, 1);

  // ld a1, 8(sp) == 0x00813583
  i = decode(0x00813583);
  EXPECT_EQ(i.op, Op::kLd);
  EXPECT_EQ(i.rd, 11);
  EXPECT_EQ(i.rs1, 2);
  EXPECT_EQ(i.imm, 8);
  EXPECT_EQ(i.access_bytes(), 8u);

  // sd a1, -16(sp) == 0xfeb13823
  i = decode(0xFEB13823);
  EXPECT_EQ(i.op, Op::kSd);
  EXPECT_EQ(i.rs1, 2);
  EXPECT_EQ(i.rs2, 11);
  EXPECT_EQ(i.imm, -16);

  // beq a0, zero, +16 == 0x00050863
  i = decode(0x00050863);
  EXPECT_EQ(i.op, Op::kBeq);
  EXPECT_EQ(i.imm, 16);

  // lui t0, 0x12345 == 0x123452b7
  i = decode(0x123452B7);
  EXPECT_EQ(i.op, Op::kLui);
  EXPECT_EQ(i.rd, 5);
  EXPECT_EQ(i.imm, 0x12345000);

  // jal ra, +2048 == 0x001000ef  (imm[11] lands in bit 20)
  i = decode(0x001000EF);
  EXPECT_EQ(i.op, Op::kJal);
  EXPECT_EQ(i.rd, 1);
  EXPECT_EQ(i.imm, 2048);

  // mul a2, a3, a4 == 0x02e68633
  i = decode(0x02E68633);
  EXPECT_EQ(i.op, Op::kMul);

  EXPECT_EQ(decode(0x00000073).op, Op::kEcall);
  EXPECT_EQ(decode(0x00100073).op, Op::kEbreak);
}

TEST(Isa, InvalidWordsRejected) {
  EXPECT_FALSE(decode(0x00000000).valid());
  EXPECT_FALSE(decode(0xFFFFFFFF).valid());
  // BRANCH with funct3 == 2 is unassigned.
  EXPECT_FALSE(decode(0x00002063 | 0x63).valid());
}

TEST(Isa, EncodeDecodeRoundTripAllOps) {
  Xoshiro256 rng(3);
  for (int opi = 1; opi <= static_cast<int>(Op::kRemuw); ++opi) {
    const Op op = static_cast<Op>(opi);
    for (int trial = 0; trial < 50; ++trial) {
      Instruction in{};
      in.op = op;
      in.rd = static_cast<std::uint8_t>(rng.below(32));
      in.rs1 = static_cast<std::uint8_t>(rng.below(32));
      in.rs2 = static_cast<std::uint8_t>(rng.below(32));
      switch (op) {
        case Op::kLui: case Op::kAuipc:
          in.imm = static_cast<std::int64_t>(
              static_cast<std::int32_t>(rng() & 0xFFFFF000u));
          break;
        case Op::kJal:
          in.imm = (static_cast<std::int64_t>(rng.below(1 << 20)) -
                    (1 << 19)) & ~1LL;
          break;
        case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
        case Op::kBltu: case Op::kBgeu:
          in.imm = (static_cast<std::int64_t>(rng.below(1 << 12)) -
                    (1 << 11)) & ~1LL;
          break;
        case Op::kSlli: case Op::kSrli: case Op::kSrai:
          in.imm = static_cast<std::int64_t>(rng.below(64));
          break;
        case Op::kSlliw: case Op::kSrliw: case Op::kSraiw:
          in.imm = static_cast<std::int64_t>(rng.below(32));
          break;
        case Op::kFence: case Op::kEcall: case Op::kEbreak:
          in.rd = in.rs1 = in.rs2 = 0;
          in.imm = 0;
          break;
        default:
          in.imm = static_cast<std::int64_t>(rng.below(1 << 12)) - (1 << 11);
          break;
      }
      // R-type ops carry no immediate.
      if ((op >= Op::kAdd && op <= Op::kAnd) ||
          (op >= Op::kAddw && op <= Op::kSraw) ||
          (op >= Op::kMul && op <= Op::kRemuw)) {
        in.imm = 0;
      }
      const std::uint32_t word = encode(in);
      const Instruction out = decode(word);
      ASSERT_EQ(out.op, in.op) << mnemonic(op);
      // rd is only architectural outside stores/branches (their rd field
      // bits carry immediate pieces); rs1/rs2 only outside U/J formats.
      if (!in.is_store() && !in.is_branch() && op != Op::kFence &&
          op != Op::kEcall && op != Op::kEbreak) {
        EXPECT_EQ(out.rd, in.rd) << mnemonic(op);
      }
      if (in.is_store() || in.is_branch()) {
        EXPECT_EQ(out.rs1, in.rs1) << mnemonic(op);
        EXPECT_EQ(out.rs2, in.rs2) << mnemonic(op);
      }
      EXPECT_EQ(out.imm, in.imm) << mnemonic(op) << " imm " << in.imm;
    }
  }
}

TEST(Isa, RegisterNames) {
  EXPECT_EQ(register_number("zero"), 0);
  EXPECT_EQ(register_number("ra"), 1);
  EXPECT_EQ(register_number("sp"), 2);
  EXPECT_EQ(register_number("a0"), 10);
  EXPECT_EQ(register_number("t6"), 31);
  EXPECT_EQ(register_number("x17"), 17);
  EXPECT_EQ(register_number("fp"), 8);
  EXPECT_EQ(register_number("bogus"), -1);
  EXPECT_EQ(register_number("x32"), -1);
  EXPECT_STREQ(register_name(10), "a0");
}

TEST(Isa, ClassPredicates) {
  EXPECT_TRUE(decode(0x00813583).is_load());   // ld
  EXPECT_TRUE(decode(0xFEB13823).is_store());  // sd
  EXPECT_TRUE(decode(0x00050863).is_branch()); // beq
  EXPECT_FALSE(decode(0x00150513).is_load());  // addi
}

}  // namespace
}  // namespace hmcc::riscv
