// RV64A extension: LR/SC and AMO semantics, trace shape, and assembly.
#include <gtest/gtest.h>

#include <vector>

#include "riscv/assembler.hpp"
#include "riscv/cpu.hpp"
#include "riscv/isa.hpp"

namespace hmcc::riscv {
namespace {

TEST(Atomics, DecodeEncodeRoundTrip) {
  for (const Op op : {Op::kLrW, Op::kLrD, Op::kScW, Op::kScD, Op::kAmoSwapW,
                      Op::kAmoSwapD, Op::kAmoAddW, Op::kAmoAddD, Op::kAmoXorW,
                      Op::kAmoXorD, Op::kAmoAndW, Op::kAmoAndD, Op::kAmoOrW,
                      Op::kAmoOrD}) {
    Instruction in{};
    in.op = op;
    in.rd = 10;
    in.rs1 = 11;
    in.rs2 = (op == Op::kLrW || op == Op::kLrD) ? 0 : 12;
    const Instruction out = decode(encode(in));
    EXPECT_EQ(out.op, in.op) << mnemonic(op);
    EXPECT_EQ(out.rd, in.rd);
    EXPECT_EQ(out.rs1, in.rs1);
    EXPECT_EQ(out.rs2, in.rs2);
    EXPECT_TRUE(out.is_atomic());
  }
  // amoadd.w a0, a2, (a1) reference encoding: 0x00c5a52f
  EXPECT_EQ(decode(0x00C5A52F).op, Op::kAmoAddW);
}

struct Run {
  SparseMemory mem;
  std::uint64_t regs[32];
  std::vector<std::tuple<Addr, std::uint32_t, bool>> accesses;
};

Run run_asm(const std::string& body) {
  Assembler as;
  std::string error;
  auto prog = as.assemble("_start:\n" + body + "\n    ebreak\n", &error);
  EXPECT_TRUE(prog.has_value()) << error;
  Run r{};
  if (!prog) return r;
  prog->load_into(r.mem);
  Rv64Core cpu(r.mem);
  cpu.set_trace_hook([&r](Addr a, std::uint32_t n, bool st, bool fence) {
    if (!fence) r.accesses.emplace_back(a, n, st);
  });
  cpu.set_pc(prog->symbol("_start").value_or(prog->base));
  cpu.run(100000);
  EXPECT_TRUE(cpu.halted());
  for (unsigned i = 0; i < 32; ++i) r.regs[i] = cpu.reg(i);
  return r;
}

TEST(Atomics, AmoAddReturnsOldAndStoresSum) {
  auto r = run_asm(R"(
    li   a1, 0x4000
    li   t0, 40
    sd   t0, 0(a1)
    li   a2, 2
    amoadd.d a0, a2, (a1)
  )");
  EXPECT_EQ(r.regs[10], 40u);                  // rd = old value
  EXPECT_EQ(r.mem.read(0x4000, 8), 42u);       // memory = old + rs2
  // Trace shape: the sd plus the AMO's load+store pair.
  ASSERT_EQ(r.accesses.size(), 3u);
  EXPECT_EQ(r.accesses[1],
            std::make_tuple(Addr{0x4000}, 8u, false));  // AMO load
  EXPECT_EQ(r.accesses[2],
            std::make_tuple(Addr{0x4000}, 8u, true));   // AMO store
}

TEST(Atomics, AmoSwapAndBitwiseOps) {
  auto r = run_asm(R"(
    li   a1, 0x4000
    li   t0, 0xF0
    sd   t0, 0(a1)
    li   a2, 0x0F
    amoor.d  a0, a2, (a1)    # mem: 0xFF, a0 = 0xF0
    li   a3, 0x3C
    amoand.d a4, a3, (a1)    # mem: 0x3C, a4 = 0xFF
    li   a5, 0xFF
    amoxor.d a6, a5, (a1)    # mem: 0xC3, a6 = 0x3C
    li   s0, 7
    amoswap.d s1, s0, (a1)   # mem: 7, s1 = 0xC3
  )");
  EXPECT_EQ(r.regs[10], 0xF0u);
  EXPECT_EQ(r.regs[14], 0xFFu);
  EXPECT_EQ(r.regs[16], 0x3Cu);
  EXPECT_EQ(r.regs[9], 0xC3u);
  EXPECT_EQ(r.mem.read(0x4000, 8), 7u);
}

TEST(Atomics, AmoWordSignExtends) {
  auto r = run_asm(R"(
    li   a1, 0x4000
    li   t0, 0xFFFFFFFF
    sw   t0, 0(a1)
    li   a2, 1
    amoadd.w a0, a2, (a1)
  )");
  EXPECT_EQ(r.regs[10], ~0ULL);            // old value sign-extended
  EXPECT_EQ(r.mem.read(0x4000, 4), 0u);    // wrapped to 0
}

TEST(Atomics, LrScSucceedsOnMatchingReservation) {
  auto r = run_asm(R"(
    li   a1, 0x4000
    li   t0, 5
    sd   t0, 0(a1)
    lr.d a0, (a1)          # a0 = 5, reserve
    addi a0, a0, 1
    sc.d a2, a0, (a1)      # succeeds: a2 = 0
  )");
  EXPECT_EQ(r.regs[12], 0u);
  EXPECT_EQ(r.mem.read(0x4000, 8), 6u);
}

TEST(Atomics, ScFailsWithoutReservation) {
  auto r = run_asm(R"(
    li   a1, 0x4000
    li   a0, 9
    sc.d a2, a0, (a1)      # no reservation: a2 = 1, no store
  )");
  EXPECT_EQ(r.regs[12], 1u);
  EXPECT_EQ(r.mem.read(0x4000, 8), 0u);
  EXPECT_TRUE(r.accesses.empty());  // failed SC performs no memory access
}

TEST(Atomics, ScFailsOnDifferentAddress) {
  auto r = run_asm(R"(
    li   a1, 0x4000
    li   a3, 0x5000
    lr.d a0, (a1)
    li   a0, 9
    sc.d a2, a0, (a3)      # reservation was for a1: fails
  )");
  EXPECT_EQ(r.regs[12], 1u);
  EXPECT_EQ(r.mem.read(0x5000, 8), 0u);
}

TEST(Atomics, AtomicTallyLoop) {
  // The EP/IS-style tally kernel: atomic increments over a small histogram.
  auto r = run_asm(R"(
    li   a1, 0x8000        # histogram base
    li   t0, 64            # iterations
    li   t2, 1
loop:
    andi t1, t0, 0x38      # bucket = (i & 7) * 8
    add  t3, a1, t1
    amoadd.d zero, t2, (t3)
    addi t0, t0, -1
    bnez t0, loop
  )");
  // 64 increments spread over 8 buckets -> each bucket holds 8.
  for (Addr b = 0x8000; b < 0x8040; b += 8) {
    EXPECT_EQ(r.mem.read(b, 8), 8u) << b;
  }
  EXPECT_EQ(r.accesses.size(), 128u);  // 64 RMW pairs
}

TEST(Atomics, AssemblerRejectsOffsets) {
  Assembler as;
  std::string error;
  EXPECT_FALSE(as.assemble("_start:\n  amoadd.d a0, a1, 8(a2)\n", &error));
  EXPECT_NE(error.find("bare"), std::string::npos);
  EXPECT_FALSE(as.assemble("_start:\n  lr.w a0, 4(a1)\n", &error));
}

}  // namespace
}  // namespace hmcc::riscv
