#include "riscv/assembler.hpp"

#include <gtest/gtest.h>

#include "riscv/cpu.hpp"
#include "riscv/tracing.hpp"

namespace hmcc::riscv {
namespace {

/// Assemble + run helper; returns the core after halt.
struct RunResult {
  SparseMemory mem;
  std::uint64_t regs[32];
  bool halted;
  std::uint64_t exit_code;
};

RunResult run_source(const std::string& src,
                     std::uint64_t max_instr = 1'000'000) {
  Assembler as;
  std::string error;
  auto prog = as.assemble(src, &error);
  EXPECT_TRUE(prog.has_value()) << error;
  RunResult r{};
  if (!prog) return r;
  prog->load_into(r.mem);
  Rv64Core cpu(r.mem);
  cpu.set_pc(prog->symbol("_start").value_or(prog->base));
  cpu.run(max_instr);
  for (unsigned i = 0; i < 32; ++i) r.regs[i] = cpu.reg(i);
  r.halted = cpu.halted();
  r.exit_code = cpu.exit_code();
  return r;
}

TEST(Assembler, SimpleArithmetic) {
  const auto r = run_source(R"(
_start:
    li   a0, 40
    addi a0, a0, 2
    ebreak
)");
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.regs[10], 42u);
}

TEST(Assembler, LiHandlesLargeConstants) {
  const auto r = run_source(R"(
_start:
    li t0, 0x123456789ABCDEF0
    li t1, -1
    li t2, 0x80000000
    li t3, 4096
    ebreak
)");
  EXPECT_EQ(r.regs[5], 0x123456789ABCDEF0ULL);
  EXPECT_EQ(r.regs[6], ~0ULL);
  EXPECT_EQ(r.regs[7], 0x80000000ULL);
  EXPECT_EQ(r.regs[28], 4096u);
}

TEST(Assembler, LoopWithLabelsAndBranches) {
  // Sum 1..100 -> 5050.
  const auto r = run_source(R"(
_start:
    li t0, 0        # acc
    li t1, 1        # i
    li t2, 101
loop:
    add  t0, t0, t1
    addi t1, t1, 1
    bne  t1, t2, loop
    mv   a0, t0
    ebreak
)");
  EXPECT_EQ(r.regs[10], 5050u);
}

TEST(Assembler, MemoryOperandsAndData) {
  const auto r = run_source(R"(
_start:
    la   a0, value
    ld   t0, 0(a0)
    ld   t1, 8(a0)
    add  t0, t0, t1
    sd   t0, 16(a0)
    ld   a1, 16(a0)
    ebreak
    .align 3
value:
    .dword 40
    .dword 2
    .dword 0
)");
  EXPECT_EQ(r.regs[11], 42u);
}

TEST(Assembler, PseudoInstructions) {
  const auto r = run_source(R"(
_start:
    li   t0, 5
    neg  t1, t0       # -5
    not  t2, t0       # ~5
    seqz t3, zero     # 1
    snez t4, t0       # 1
    beqz zero, over
    li   t5, 99       # skipped
over:
    ebreak
)");
  EXPECT_EQ(r.regs[6], static_cast<std::uint64_t>(-5));
  EXPECT_EQ(r.regs[7], ~5ULL);
  EXPECT_EQ(r.regs[28], 1u);
  EXPECT_EQ(r.regs[29], 1u);
  EXPECT_EQ(r.regs[30], 0u);
}

TEST(Assembler, CallAndRet) {
  const auto r = run_source(R"(
_start:
    li   a0, 20
    call double_it
    call double_it
    ebreak
double_it:
    add a0, a0, a0
    ret
)");
  EXPECT_EQ(r.regs[10], 80u);
}

TEST(Assembler, SwappedBranchPseudos) {
  const auto r = run_source(R"(
_start:
    li t0, 3
    li t1, 7
    bgt t1, t0, good      # 7 > 3 taken
    li a0, 1
    ebreak
good:
    ble t0, t1, good2     # 3 <= 7 taken
    li a0, 2
    ebreak
good2:
    li a0, 42
    ebreak
)");
  EXPECT_EQ(r.regs[10], 42u);
}

TEST(Assembler, EcallExit) {
  const auto r = run_source(R"(
_start:
    li a7, 93
    li a0, 0
    ecall
)");
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.exit_code, 0u);
}

TEST(Assembler, ErrorsAreDiagnosed) {
  Assembler as;
  std::string error;
  EXPECT_FALSE(as.assemble("_start:\n  frobnicate a0, a1\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("frobnicate"), std::string::npos);

  EXPECT_FALSE(as.assemble("_start:\n  addi a0, a0, 99999\n", &error));
  EXPECT_FALSE(as.assemble("_start:\n  j nowhere\n", &error));
  EXPECT_NE(error.find("nowhere"), std::string::npos);
  EXPECT_FALSE(as.assemble("_start:\n  addi a0, q9, 1\n", &error));
}

TEST(Assembler, OrgPlacesCode) {
  Assembler as;
  std::string error;
  auto prog = as.assemble(R"(
    .org 0x2000
_start:
    ebreak
)", &error);
  ASSERT_TRUE(prog.has_value()) << error;
  EXPECT_EQ(prog->base, 0x2000u);
  EXPECT_EQ(prog->symbol("_start"), Addr{0x2000});
}

TEST(Assembler, TraceProgramCapturesSpmdStreams) {
  // Each core strides over its own slice: a0 = core id, a1 = cores.
  Assembler as;
  std::string error;
  auto prog = as.assemble(R"(
_start:
    li   t0, 0x40000000   # array base
    slli t1, a0, 3        # core offset
    add  t0, t0, t1
    li   t2, 4            # 4 iterations
loop:
    ld   t3, 0(t0)
    sd   t3, 8(t0)
    slli t4, a1, 3
    add  t0, t0, t4
    addi t2, t2, -1
    bnez t2, loop
    fence
    li a7, 93
    li a0, 0
    ecall
)", &error);
  ASSERT_TRUE(prog.has_value()) << error;
  const auto result = trace_program(*prog, 3);
  EXPECT_TRUE(result.all_exited_cleanly);
  ASSERT_EQ(result.trace.per_core.size(), 3u);
  for (std::uint32_t c = 0; c < 3; ++c) {
    const auto& stream = result.trace.per_core[c];
    // 4 loads + 4 stores + 1 fence.
    ASSERT_EQ(stream.size(), 9u);
    EXPECT_EQ(stream[0].addr, 0x40000000u + c * 8);
    EXPECT_EQ(stream[0].type, ReqType::kLoad);
    EXPECT_EQ(stream[1].addr, 0x40000008u + c * 8);
    EXPECT_EQ(stream[1].type, ReqType::kStore);
    EXPECT_TRUE(stream[8].is_fence());
  }
}

}  // namespace
}  // namespace hmcc::riscv
