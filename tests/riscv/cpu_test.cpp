#include "riscv/cpu.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "riscv/isa.hpp"

namespace hmcc::riscv {
namespace {

/// Helper: write encoded instructions at 0x1000 and run.
class CpuFixture : public ::testing::Test {
 protected:
  void load(std::initializer_list<Instruction> program) {
    Addr a = 0x1000;
    for (const Instruction& i : program) {
      const std::uint32_t w = encode(i);
      mem.write(a, w, 4);
      a += 4;
    }
    cpu.set_pc(0x1000);
  }
  static Instruction mk(Op op, unsigned rd, unsigned rs1, unsigned rs2,
                        std::int64_t imm = 0) {
    Instruction i{};
    i.op = op;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(rs1);
    i.rs2 = static_cast<std::uint8_t>(rs2);
    i.imm = imm;
    return i;
  }

  SparseMemory mem;
  Rv64Core cpu{mem};
};

TEST_F(CpuFixture, ArithmeticBasics) {
  load({
      mk(Op::kAddi, 5, 0, 0, 40),    // t0 = 40
      mk(Op::kAddi, 6, 5, 0, 2),     // t1 = 42
      mk(Op::kSub, 7, 6, 5),         // t2 = 2
      mk(Op::kMul, 28, 5, 6),        // t3 = 1680
      mk(Op::kEbreak, 0, 0, 0),
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(5), 40u);
  EXPECT_EQ(cpu.reg(6), 42u);
  EXPECT_EQ(cpu.reg(7), 2u);
  EXPECT_EQ(cpu.reg(28), 1680u);
  EXPECT_TRUE(cpu.halted());
}

TEST_F(CpuFixture, X0IsAlwaysZero) {
  load({
      mk(Op::kAddi, 0, 0, 0, 123),
      mk(Op::kEbreak, 0, 0, 0),
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(0), 0u);
}

TEST_F(CpuFixture, LoadStoreRoundTripAndSignExtension) {
  load({
      mk(Op::kAddi, 5, 0, 0, -1),          // t0 = -1
      mk(Op::kSw, 0, 10, 5, 0),            // [a0] = 0xFFFFFFFF
      mk(Op::kLw, 6, 10, 0, 0),            // t1 = sext 32
      mk(Op::kLwu, 7, 10, 0, 0),           // t2 = zext 32
      mk(Op::kLb, 28, 10, 0, 0),           // t3 = sext 8
      mk(Op::kLbu, 29, 10, 0, 0),          // t4 = zext 8
      mk(Op::kEbreak, 0, 0, 0),
  });
  cpu.set_reg(10, 0x4000);
  cpu.run();
  EXPECT_EQ(cpu.reg(6), ~0ULL);
  EXPECT_EQ(cpu.reg(7), 0xFFFFFFFFULL);
  EXPECT_EQ(cpu.reg(28), ~0ULL);
  EXPECT_EQ(cpu.reg(29), 0xFFULL);
}

TEST_F(CpuFixture, BranchesAndLoop) {
  // for (t0 = 0; t0 != 10; ++t0) t1 += t0;  => t1 = 45
  load({
      mk(Op::kAddi, 5, 0, 0, 0),    // 0x1000 t0 = 0
      mk(Op::kAddi, 6, 0, 0, 0),    // 0x1004 t1 = 0
      mk(Op::kAddi, 7, 0, 0, 10),   // 0x1008 t2 = 10
      mk(Op::kBeq, 0, 5, 7, 16),    // 0x100C if t0==t2 -> 0x101C
      mk(Op::kAdd, 6, 6, 5),        // 0x1010
      mk(Op::kAddi, 5, 5, 0, 1),    // 0x1014
      mk(Op::kJal, 0, 0, 0, -12),   // 0x1018 -> 0x100C
      mk(Op::kEbreak, 0, 0, 0),     // 0x101C
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(6), 45u);
  EXPECT_TRUE(cpu.halted());
}

TEST_F(CpuFixture, JalLinksAndJalrReturns) {
  load({
      mk(Op::kJal, 1, 0, 0, 12),     // 0x1000 call 0x100C, ra = 0x1004
      mk(Op::kAddi, 5, 5, 0, 1),     // 0x1004 t0 += 1 (after return)
      mk(Op::kEbreak, 0, 0, 0),      // 0x1008
      mk(Op::kAddi, 5, 0, 0, 41),    // 0x100C t0 = 41
      mk(Op::kJalr, 0, 1, 0, 0),     // 0x1010 ret
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(5), 42u);
}

TEST_F(CpuFixture, WordOpsSignExtend) {
  load({
      mk(Op::kAddi, 5, 0, 0, 1),
      mk(Op::kSlli, 5, 5, 0, 31),   // t0 = 0x80000000
      mk(Op::kAddiw, 6, 5, 0, 0),   // t1 = sext32 -> 0xFFFFFFFF80000000
      mk(Op::kAddw, 7, 5, 5),       // t2 = sext32(0x100000000) = 0
      mk(Op::kSraiw, 28, 5, 0, 31), // t3 = -1
      mk(Op::kEbreak, 0, 0, 0),
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(6), 0xFFFFFFFF80000000ULL);
  EXPECT_EQ(cpu.reg(7), 0u);
  EXPECT_EQ(cpu.reg(28), ~0ULL);
}

TEST_F(CpuFixture, DivisionEdgeCases) {
  load({
      mk(Op::kAddi, 5, 0, 0, 7),
      mk(Op::kAddi, 6, 0, 0, 0),
      mk(Op::kDiv, 7, 5, 6),    // div by zero -> -1
      mk(Op::kRem, 28, 5, 6),   // rem by zero -> rs1
      mk(Op::kDivu, 29, 5, 6),  // -> all ones
      mk(Op::kEbreak, 0, 0, 0),
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(7), ~0ULL);
  EXPECT_EQ(cpu.reg(28), 7u);
  EXPECT_EQ(cpu.reg(29), ~0ULL);
}

TEST_F(CpuFixture, MulhVariants) {
  load({
      mk(Op::kAddi, 5, 0, 0, -1),   // t0 = -1
      mk(Op::kAddi, 6, 0, 0, 2),    // t1 = 2
      mk(Op::kMulh, 7, 5, 6),       // hi(-1 * 2) = -1
      mk(Op::kMulhu, 28, 5, 6),     // hi(2^64-1 times 2) = 1
      mk(Op::kEbreak, 0, 0, 0),
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(7), ~0ULL);
  EXPECT_EQ(cpu.reg(28), 1u);
}

TEST_F(CpuFixture, EcallExit93Halts) {
  load({
      mk(Op::kAddi, 17, 0, 0, 93),  // a7 = exit
      mk(Op::kAddi, 10, 0, 0, 5),   // a0 = 5
      mk(Op::kEcall, 0, 0, 0),
  });
  cpu.run();
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.exit_code(), 5u);
}

TEST_F(CpuFixture, TraceHookSeesAccessesAndFences) {
  std::vector<std::tuple<Addr, std::uint32_t, bool, bool>> events;
  cpu.set_trace_hook([&](Addr a, std::uint32_t n, bool st, bool fence) {
    events.emplace_back(a, n, st, fence);
  });
  load({
      mk(Op::kSd, 0, 10, 5, 8),     // store 8B at a0+8
      mk(Op::kLw, 6, 10, 0, 8),     // load 4B at a0+8
      mk(Op::kFence, 0, 0, 0),
      mk(Op::kEbreak, 0, 0, 0),
  });
  cpu.set_reg(10, 0x8000);
  cpu.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], std::make_tuple(Addr{0x8008}, 8u, true, false));
  EXPECT_EQ(events[1], std::make_tuple(Addr{0x8008}, 4u, false, false));
  EXPECT_TRUE(std::get<3>(events[2]));
}

TEST_F(CpuFixture, InvalidInstructionFaults) {
  mem.write(0x1000, 0, 4);
  cpu.set_pc(0x1000);
  EXPECT_FALSE(cpu.step());
  EXPECT_FALSE(cpu.halted());  // fault, not a clean halt
}

TEST_F(CpuFixture, RunRespectsInstructionBudget) {
  // Infinite loop.
  load({mk(Op::kJal, 0, 0, 0, 0)});
  const std::uint64_t ran = cpu.run(1000);
  EXPECT_EQ(ran, 1000u);
  EXPECT_FALSE(cpu.halted());
}

}  // namespace
}  // namespace hmcc::riscv
