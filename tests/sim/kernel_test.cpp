#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hmcc {
namespace {

TEST(Kernel, RunsEventsInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(30, [&] { order.push_back(3); });
  k.schedule_at(10, [&] { order.push_back(1); });
  k.schedule_at(20, [&] { order.push_back(2); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), 30u);
}

TEST(Kernel, SameCycleFifoOrder) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    k.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, EventsScheduleMoreEvents) {
  Kernel k;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) k.schedule(5, chain);
  };
  k.schedule_at(0, chain);
  k.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(k.now(), 45u);
}

TEST(Kernel, RunUntilLeavesLaterEvents) {
  Kernel k;
  int fired = 0;
  k.schedule_at(10, [&] { ++fired; });
  k.schedule_at(100, [&] { ++fired; });
  EXPECT_TRUE(k.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 50u);
  EXPECT_FALSE(k.run_until(200));
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, ZeroDelayRunsLaterSameCycle) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(5, [&] {
    order.push_back(1);
    k.schedule(0, [&] { order.push_back(2); });
  });
  k.schedule_at(5, [&] { order.push_back(3); });
  k.run();
  // The zero-delay event was scheduled after event "3" existed, so it fires
  // after it within the same cycle.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(k.now(), 5u);
}

TEST(Kernel, StepAndCounters) {
  Kernel k;
  k.schedule_at(1, [] {});
  k.schedule_at(2, [] {});
  EXPECT_EQ(k.pending(), 2u);
  EXPECT_TRUE(k.step());
  EXPECT_EQ(k.pending(), 1u);
  EXPECT_TRUE(k.step());
  EXPECT_FALSE(k.step());
  EXPECT_EQ(k.events_fired(), 2u);
}

}  // namespace
}  // namespace hmcc
