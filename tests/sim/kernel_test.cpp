#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/reference_kernel.hpp"

namespace hmcc {
namespace {

TEST(Kernel, RunsEventsInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(30, [&] { order.push_back(3); });
  k.schedule_at(10, [&] { order.push_back(1); });
  k.schedule_at(20, [&] { order.push_back(2); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), 30u);
}

TEST(Kernel, SameCycleFifoOrder) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    k.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, EventsScheduleMoreEvents) {
  Kernel k;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) k.schedule(5, chain);
  };
  k.schedule_at(0, chain);
  k.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(k.now(), 45u);
}

TEST(Kernel, RunUntilLeavesLaterEvents) {
  Kernel k;
  int fired = 0;
  k.schedule_at(10, [&] { ++fired; });
  k.schedule_at(100, [&] { ++fired; });
  EXPECT_TRUE(k.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 50u);
  EXPECT_FALSE(k.run_until(200));
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, ZeroDelayRunsLaterSameCycle) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(5, [&] {
    order.push_back(1);
    k.schedule(0, [&] { order.push_back(2); });
  });
  k.schedule_at(5, [&] { order.push_back(3); });
  k.run();
  // The zero-delay event was scheduled after event "3" existed, so it fires
  // after it within the same cycle.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(k.now(), 5u);
}

TEST(Kernel, StepAndCounters) {
  Kernel k;
  k.schedule_at(1, [] {});
  k.schedule_at(2, [] {});
  EXPECT_EQ(k.pending(), 2u);
  EXPECT_TRUE(k.step());
  EXPECT_EQ(k.pending(), 1u);
  EXPECT_TRUE(k.step());
  EXPECT_FALSE(k.step());
  EXPECT_EQ(k.events_fired(), 2u);
}

TEST(Kernel, RunUntilFiresEventExactlyAtLimit) {
  Kernel k;
  int fired = 0;
  k.schedule_at(50, [&] { ++fired; });
  k.schedule_at(51, [&] { ++fired; });
  EXPECT_TRUE(k.run_until(50));  // when == limit fires
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 50u);
  EXPECT_FALSE(k.run_until(51));
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, RunUntilAdvancesTimeOnEmptyQueue) {
  Kernel k;
  EXPECT_FALSE(k.run_until(1000));
  EXPECT_EQ(k.now(), 1000u);
  // Past limits leave time untouched.
  EXPECT_FALSE(k.run_until(10));
  EXPECT_EQ(k.now(), 1000u);
  int fired = 0;
  k.schedule(1, [&] { ++fired; });
  k.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 1001u);
}

TEST(Kernel, FarFutureEventsBeyondRingCoverage) {
  // Deltas far past kRingSize route through the overflow heap and still
  // fire in (cycle, seq) order.
  Kernel k;
  std::vector<int> order;
  const Cycle far = 10 * Kernel::kRingSize;
  k.schedule_at(far, [&] { order.push_back(1); });
  k.schedule_at(far + 3 * Kernel::kRingSize, [&] { order.push_back(2); });
  k.schedule_at(5, [&] { order.push_back(0); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(k.now(), far + 3 * Kernel::kRingSize);
}

TEST(Kernel, OverflowAndRingEventsAtTheSameCycleKeepScheduleOrder) {
  // An event scheduled while its cycle was outside the ring window must
  // fire before events scheduled for the same cycle from nearby (it was
  // scheduled first).
  Kernel k;
  std::vector<int> order;
  const Cycle target = Kernel::kRingSize + 100;
  k.schedule_at(target, [&] { order.push_back(1); });  // overflow path
  k.schedule_at(target - 50, [&, target] {
    // Now target is in-window: this lands in the ring bucket.
    k.schedule_at(target, [&] { order.push_back(2); });
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, BucketWrapReusesRingSlots) {
  // March time across several full ring laps; every bucket slot is reused
  // for multiple distinct cycles congruent mod kRingSize.
  Kernel k;
  std::uint64_t fired = 0;
  std::function<void()> hop = [&] {
    ++fired;
    if (fired < 64) k.schedule(Kernel::kRingSize - 1, hop);
  };
  k.schedule_at(0, hop);
  k.run();
  EXPECT_EQ(fired, 64u);
  EXPECT_EQ(k.now(), 63u * (Kernel::kRingSize - 1));
}

TEST(Kernel, LargeCapturesFallBackToHeapAndStillRun) {
  Kernel k;
  std::array<std::uint64_t, 16> blob{};  // 128 B capture: > kInlineBytes
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = i + 1;
  std::uint64_t sum = 0;
  static_assert(!InlineCallback::fits_inline<decltype([blob, &sum] {})>());
  k.schedule_at(3, [blob, &sum] {
    for (std::uint64_t v : blob) sum += v;
  });
  k.run();
  EXPECT_EQ(sum, 136u);
}

TEST(Kernel, SameCycleFifoAcrossManyEvents) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(40, [&] {
    for (int i = 0; i < 100; ++i) {
      k.schedule(0, [&order, i] { order.push_back(i); });
    }
  });
  k.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

// ---------------------------------------------------------------------------
// Ring sizing: the bucket ring is a constructor parameter now (the System
// sizes it from the platform's worst-case event delay); any power-of-two
// ring must produce the same schedule, only the fast-path coverage changes.

TEST(Kernel, CustomRingSizeIsObservable) {
  EXPECT_EQ(Kernel().ring_size(), Kernel::kRingSize);
  EXPECT_EQ(Kernel(64).ring_size(), 64u);
  EXPECT_EQ(Kernel(1 << 16).ring_size(), std::size_t{1} << 16);
}

TEST(Kernel, RingSizeForCoversTheDelayAndClamps) {
  // Smallest power of two STRICTLY greater than the worst routine delay
  // (a delay equal to the ring span would wrap onto the current bucket),
  // clamped to [kMinRingSize, kMaxRingSize].
  EXPECT_EQ(Kernel::ring_size_for(0), Kernel::kMinRingSize);
  EXPECT_EQ(Kernel::ring_size_for(255), 256u);
  EXPECT_EQ(Kernel::ring_size_for(256), 512u);
  EXPECT_EQ(Kernel::ring_size_for(596), 1024u);
  EXPECT_EQ(Kernel::ring_size_for(100000), Kernel::kMaxRingSize);
  for (Cycle d : {Cycle{1}, Cycle{300}, Cycle{4095}, Cycle{65535}}) {
    const std::size_t size = Kernel::ring_size_for(d);
    EXPECT_EQ(size & (size - 1), 0u) << d;
    EXPECT_GE(size, Kernel::kMinRingSize);
    EXPECT_LE(size, Kernel::kMaxRingSize);
    if (size < Kernel::kMaxRingSize) EXPECT_GT(static_cast<Cycle>(size), d);
  }
}

TEST(Kernel, TinyRingMatchesDefaultRingSchedule) {
  // Same event tree on a 64-bucket ring (lots of overflow traffic) and the
  // default ring: identical firing order is required.
  auto run_with = [](std::size_t ring_size) {
    Kernel k(ring_size);
    std::vector<std::pair<int, Cycle>> log;
    std::function<void(int)> fire = [&](int id) {
      log.emplace_back(id, k.now());
      if (id < 200) {
        k.schedule(static_cast<Cycle>((id * 37) % 500), [&fire, id] {
          fire(id + 2);
        });
      }
    };
    k.schedule_at(0, [&fire] { fire(0); });
    k.schedule_at(1, [&fire] { fire(1); });
    k.run();
    return log;
  };
  EXPECT_EQ(run_with(64), run_with(Kernel::kRingSize));
}

// ---------------------------------------------------------------------------
// Randomized differential test: the production Kernel must fire the exact
// same (event id, cycle) sequence as the reference heap scheduler for
// arbitrary self-expanding event trees mixing ring and overflow delays.

template <typename K>
std::vector<std::pair<std::uint64_t, Cycle>> run_scenario(std::uint64_t seed,
                                                          bool use_run_until) {
  K k;
  std::vector<std::pair<std::uint64_t, Cycle>> log;
  std::uint64_t next_id = 0;
  std::function<void(std::uint64_t)> fire = [&](std::uint64_t id) {
    log.emplace_back(id, k.now());
    if (log.size() >= 4000) return;  // identical cutoff for both kernels
    Xoshiro256 rng(seed ^ (id * 0x9E3779B97F4A7C15ULL));
    const std::uint64_t kids = rng.below(3);
    for (std::uint64_t c = 0; c < kids; ++c) {
      // Mostly near-future (ring) with a tail of overflow-heap delays.
      const Cycle delay = rng.chance(0.05)
                              ? rng.below(4 * Kernel::kRingSize)
                              : rng.below(300);
      const std::uint64_t kid = next_id++;
      k.schedule(delay, [&fire, kid] { fire(kid); });
    }
  };
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t id = next_id++;
    k.schedule_at(Xoshiro256(seed + static_cast<std::uint64_t>(i)).below(512),
                  [&fire, id] { fire(id); });
  }
  if (use_run_until) {
    while (k.run_until(k.now() + 97)) {
    }
  } else {
    k.run();
  }
  return log;
}

TEST(Kernel, DifferentialAgainstReferenceHeapScheduler) {
  for (std::uint64_t seed : {1ULL, 42ULL, 1234567ULL}) {
    const auto expected = run_scenario<sim::ReferenceKernel>(seed, false);
    const auto actual = run_scenario<Kernel>(seed, false);
    ASSERT_GT(expected.size(), 100u);
    EXPECT_EQ(actual, expected) << "seed " << seed;
  }
}

TEST(Kernel, DifferentialUnderRunUntilStepping) {
  for (std::uint64_t seed : {7ULL, 99ULL}) {
    const auto expected = run_scenario<sim::ReferenceKernel>(seed, true);
    const auto actual = run_scenario<Kernel>(seed, true);
    ASSERT_GT(expected.size(), 100u);
    EXPECT_EQ(actual, expected) << "seed " << seed;
  }
}

TEST(Kernel, ReservedSeqPinsSameCycleOrder) {
  // A sequence number reserved between two plain schedules must fire between
  // them at the same cycle, no matter how late the callback is attached —
  // this is the commit-order guarantee the bound-weave device builds on.
  Kernel k;
  std::vector<int> order;
  k.schedule_at(10, [&] { order.push_back(1); });
  const std::uint64_t seq = k.reserve_seq();
  k.schedule_at(10, [&] { order.push_back(3); });
  k.schedule_at(5, [&k, &order, seq] {
    // Attach the reserved event mid-run, after its same-cycle neighbours.
    k.schedule_at_reserved(10, seq, [&order] { order.push_back(2); });
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.events_fired(), 4u);
}

TEST(Kernel, ReservedSeqWorksThroughOverflowHeap) {
  // Reserved events landing past the ring span take the overflow heap and
  // must still interleave with ring events by (cycle, seq).
  Kernel k;
  std::vector<int> order;
  const Cycle far = 2 * Kernel::kRingSize;
  k.schedule_at(far, [&] { order.push_back(1); });
  const std::uint64_t seq = k.reserve_seq();
  k.schedule_at(far, [&] { order.push_back(3); });
  k.schedule_at(1, [&k, &order, seq, far] {
    k.schedule_at_reserved(far, seq, [&order] { order.push_back(2); });
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), far);
}

TEST(Kernel, ReservedSeqSplicesBeforeLaterRingEvents) {
  // A reserved (small) seq attached to a ring bucket AFTER larger-seq events
  // already sit there must splice in front of them, with an unrelated
  // overflow event still firing at its own later cycle.
  Kernel k;
  std::vector<int> order;
  const Cycle target = Kernel::kRingSize / 2;
  const std::uint64_t seq = k.reserve_seq();
  k.schedule_at(target + 2 * Kernel::kRingSize,
                [&] { order.push_back(9); });  // heap path, fires last
  k.schedule_at(1, [&k, &order, seq, target] {
    k.schedule_at(target, [&order] { order.push_back(2); });
    k.schedule_at_reserved(target, seq, [&order] { order.push_back(1); });
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 9}));
}

}  // namespace
}  // namespace hmcc
