// Vault scheduling policies: unit tests of the pick ranking (FR-FCFS
// ordering, starvation cap, batch boundaries) plus system-level
// differentials — sched=fcfs must be byte-identical to the pre-queue
// baseline for every queue depth and seed, FR-FCFS must drain everything it
// admits and recover at least FCFS's row hits on a row-local workload, and
// a deferred policy under exec.vault_parallel must transparently fall back
// to the serial path with identical output.
#include "hmc/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hmc/bank.hpp"
#include "hmc/vault.hpp"
#include "system/runner.hpp"

namespace hmcc::hmc {
namespace {

HmcConfig open_page_cfg() {
  HmcConfig cfg;
  cfg.closed_page = false;
  return cfg;
}

VaultRequest req(std::uint32_t bank, std::uint64_t row, Cycle arrival,
                 std::uint64_t order) {
  VaultRequest r{};
  r.d.bank = bank;
  r.d.row = row;
  r.bytes = 64;
  r.arrival = arrival;
  r.order = order;
  return r;
}

std::unique_ptr<VaultScheduler> make_policy(SchedPolicy p,
                                            std::uint32_t starve_cap = 8) {
  HmcConfig cfg = open_page_cfg();
  cfg.sched = p;
  cfg.sched_starve_cap = starve_cap;
  return make_vault_scheduler(cfg);
}

TEST(Scheduler, FcfsAlwaysPicksOldest) {
  const HmcConfig cfg = open_page_cfg();
  std::vector<Bank> banks(2, Bank(cfg));
  banks[0].access(5, 64, 0);  // open row 5 on bank 0
  std::vector<VaultRequest> queue = {req(1, 9, 0, 2), req(0, 5, 0, 1)};
  const BankView view{&banks, 1000};
  auto sched = make_policy(SchedPolicy::kFcfs);
  const SchedPick p = sched->pick(queue, view);
  EXPECT_EQ(queue[p.index].order, 1u);  // oldest, despite bank 0's open row
}

TEST(Scheduler, FrfcfsPrefersRowHitOverOldest) {
  const HmcConfig cfg = open_page_cfg();
  std::vector<Bank> banks(2, Bank(cfg));
  banks[0].access(5, 64, 0);  // open row 5 on bank 0
  std::vector<VaultRequest> queue = {req(1, 9, 0, 1), req(0, 5, 0, 2)};
  const BankView view{&banks, 1000};
  auto sched = make_policy(SchedPolicy::kFrfcfs);
  const SchedPick p = sched->pick(queue, view);
  EXPECT_EQ(queue[p.index].order, 2u);  // the row hit, not the oldest
  EXPECT_TRUE(p.row_hit);
  EXPECT_EQ(queue[0].bypassed, 1u);  // the bypassed oldest was charged
}

TEST(Scheduler, FrfcfsIgnoresFutureArrivals) {
  const HmcConfig cfg = open_page_cfg();
  std::vector<Bank> banks(2, Bank(cfg));
  banks[0].access(5, 64, 0);
  // The row hit has not arrived yet at cycle 10; the miss has.
  std::vector<VaultRequest> queue = {req(1, 9, 0, 1), req(0, 5, 500, 2)};
  const BankView view{&banks, 10};
  auto sched = make_policy(SchedPolicy::kFrfcfs);
  const SchedPick p = sched->pick(queue, view);
  EXPECT_EQ(queue[p.index].order, 1u);
  EXPECT_EQ(queue[0].bypassed, 0u);  // nothing bypassed it
}

TEST(Scheduler, FrfcfsStarvationCapForcesOldest) {
  const HmcConfig cfg = open_page_cfg();
  std::vector<Bank> banks(2, Bank(cfg));
  banks[0].access(5, 64, 0);
  // Entry 1 (bank 1, row miss) is oldest; entry 2 is a perpetual row hit.
  std::vector<VaultRequest> queue = {req(1, 9, 0, 1), req(0, 5, 0, 2)};
  const BankView view{&banks, 1000};
  const std::uint32_t cap = 3;
  auto sched = make_policy(SchedPolicy::kFrfcfs, cap);
  for (std::uint32_t i = 0; i < cap; ++i) {
    const SchedPick p = sched->pick(queue, view);
    EXPECT_EQ(queue[p.index].order, 2u) << i;
    EXPECT_FALSE(p.starved) << i;
  }
  EXPECT_EQ(queue[0].bypassed, cap);
  // At the cap the oldest goes next regardless of the open row.
  const SchedPick p = sched->pick(queue, view);
  EXPECT_EQ(queue[p.index].order, 1u);
  EXPECT_TRUE(p.starved);
  // The bypass counter never grows past the point where it forces service.
  EXPECT_EQ(queue[0].bypassed, cap);
}

TEST(Scheduler, BatchDrainsCurrentBatchBeforeYoungerEntries) {
  const HmcConfig cfg = open_page_cfg();
  std::vector<Bank> banks(2, Bank(cfg));
  banks[0].access(5, 64, 0);
  auto sched = make_policy(SchedPolicy::kBatch);
  // First pick forms the batch {1, 2}.
  std::vector<VaultRequest> queue = {req(1, 9, 0, 1), req(1, 8, 0, 2)};
  const BankView view{&banks, 1000};
  SchedPick p = sched->pick(queue, view);
  EXPECT_EQ(queue[p.index].order, 1u);
  queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(p.index));
  // A younger row hit arrives: the open batch still goes first.
  queue.push_back(req(0, 5, 0, 3));
  p = sched->pick(queue, view);
  EXPECT_EQ(queue[p.index].order, 2u);
  queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(p.index));
  // Batch drained: the next batch is everything queued now.
  p = sched->pick(queue, view);
  EXPECT_EQ(queue[p.index].order, 3u);
  EXPECT_TRUE(p.row_hit);
}

TEST(Scheduler, BatchPicksRowHitFirstInsideBatch) {
  const HmcConfig cfg = open_page_cfg();
  std::vector<Bank> banks(2, Bank(cfg));
  banks[0].access(5, 64, 0);
  auto sched = make_policy(SchedPolicy::kBatch);
  std::vector<VaultRequest> queue = {req(1, 9, 0, 1), req(0, 5, 0, 2)};
  const BankView view{&banks, 1000};
  const SchedPick p = sched->pick(queue, view);
  EXPECT_EQ(queue[p.index].order, 2u);
  EXPECT_TRUE(p.row_hit);
}

TEST(Scheduler, VaultDeferredDrainMatchesPolicyAndCountsStats) {
  // Drive a vault directly through the deferred interface: two requests to
  // one bank where the second is a row hit; FR-FCFS serves the hit first.
  HmcConfig cfg = open_page_cfg();
  cfg.sched = SchedPolicy::kFrfcfs;
  Vault vault(cfg, 0);
  // Open row 5 by serving one request through the queue.
  vault.enqueue(DecodedAddr{0, 0, 5, 0, 0}, 64, 0, 1);
  EXPECT_FALSE(vault.queue_empty());
  const VaultServed first = vault.serve_next(vault.next_ready());
  EXPECT_EQ(first.token, 1u);
  // Queue a miss (older) and a hit (younger); the hit is served first.
  const Cycle now = first.result.data_ready + 1;
  vault.enqueue(DecodedAddr{0, 0, 9, 0, 0}, 64, now, 2);
  vault.enqueue(DecodedAddr{0, 0, 5, 0, 0}, 64, now, 3);
  const VaultServed second = vault.serve_next(vault.next_ready());
  EXPECT_EQ(second.token, 3u);
  EXPECT_TRUE(second.result.row_hit);
  EXPECT_EQ(vault.sched_row_hit_picks(), 1u);
  const VaultServed third = vault.serve_next(vault.next_ready());
  EXPECT_EQ(third.token, 2u);
  EXPECT_TRUE(vault.queue_empty());
  EXPECT_EQ(vault.requests_served(), 3u);
}

}  // namespace
}  // namespace hmcc::hmc

namespace hmcc::system {
namespace {

trace::MultiTrace random_trace(std::uint64_t seed, std::uint32_t cores,
                               std::uint64_t records) {
  Xoshiro256 rng(seed);
  trace::MultiTrace mt;
  mt.per_core.resize(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    for (std::uint64_t i = 0; i < records; ++i) {
      const double roll = rng.uniform();
      Addr addr;
      if (roll < 0.4) {
        addr = (1ULL << 30) + (i * cores + c) * 64;
      } else if (roll < 0.7) {
        addr = (1ULL << 31) + rng.below(1 << 18) * 8;
      } else {
        addr = (1ULL << 32) + rng.below(1 << 14) * 4096 + rng.below(64);
      }
      const auto size = static_cast<std::uint32_t>(1u << rng.below(4));
      if (rng.chance(0.3)) {
        mt.per_core[c].push_back(trace::TraceRecord::store(addr, size));
      } else {
        mt.per_core[c].push_back(trace::TraceRecord::load(addr, size));
      }
    }
  }
  return mt;
}

struct Observed {
  SystemReport report;
  std::string metrics;
};

Observed observe(SystemConfig cfg, const trace::MultiTrace& mt) {
  System sys(std::move(cfg));
  Observed o;
  o.report = sys.run(mt);
  if (const obs::MetricsRegistry* reg = sys.metrics()) {
    o.metrics = reg->render_prometheus();
  }
  return o;
}

SystemConfig base_cfg(std::uint32_t cores) {
  SystemConfig cfg = paper_system_config();
  cfg.hierarchy.num_cores = cores;
  cfg.obs.metrics = true;
  cfg.obs.sample_interval = 500;
  apply_mode(cfg, CoalescerMode::kFull);
  return cfg;
}

TEST(SchedulerSystem, FcfsIsByteIdenticalToPreQueueBaseline) {
  // The FCFS policy routes every request through the queue + pick machinery;
  // the result must be byte-identical to the historical immediate-service
  // controller (the default config), for any queue depth and seed.
  for (const std::uint64_t seed : {11ULL, 23ULL}) {
    const auto mt = random_trace(seed, 3, 600);
    const Observed baseline = observe(base_cfg(3), mt);
    ASSERT_TRUE(baseline.report.drained) << seed;
    for (const std::uint32_t depth : {1u, 8u, 128u}) {
      SystemConfig cfg = base_cfg(3);
      cfg.hmc.sched = hmc::SchedPolicy::kFcfs;
      cfg.hmc.vault_queue_depth = depth;
      const Observed fcfs = observe(cfg, mt);
      const std::string what =
          "seed " + std::to_string(seed) + " depth " + std::to_string(depth);
      EXPECT_EQ(fcfs.report.runtime, baseline.report.runtime) << what;
      EXPECT_EQ(fcfs.metrics, baseline.metrics) << what;
    }
  }
}

TEST(SchedulerSystem, FrfcfsDrainsEverythingAndRecoversRowHits) {
  // FR-FCFS invariants on a row-local open-page workload: the run drains
  // (every admitted request is served — no lost or starved-forever entry),
  // and policy reordering recovers at least as many row hits as FCFS.
  workloads::WorkloadParams params;
  params.num_cores = 4;
  params.accesses_per_core = 1500;
  SystemConfig fcfs_cfg = base_cfg(4);
  fcfs_cfg.hmc.closed_page = false;
  SystemConfig frfcfs_cfg = fcfs_cfg;
  frfcfs_cfg.hmc.sched = hmc::SchedPolicy::kFrfcfs;

  const RunResult fcfs = run_workload("sg", fcfs_cfg, params);
  const RunResult frfcfs = run_workload("sg", frfcfs_cfg, params);
  ASSERT_TRUE(fcfs.report.drained);
  ASSERT_TRUE(frfcfs.report.drained);
  // Identical traffic enters the cube in both runs...
  EXPECT_EQ(frfcfs.report.cpu_accesses, fcfs.report.cpu_accesses);
  // ...and everything submitted was served on the wire.
  EXPECT_EQ(frfcfs.report.hmc.reads + frfcfs.report.hmc.writes,
            frfcfs.report.memory_requests);
  EXPECT_GE(frfcfs.report.hmc.row_hits, fcfs.report.hmc.row_hits);
  EXPECT_GE(frfcfs.report.hmc.sched_row_hit_picks,
            fcfs.report.hmc.sched_row_hit_picks);
}

TEST(SchedulerSystem, StarveCapOneDegradesTowardFcfsOrder) {
  // With the tightest cap every bypass immediately forces the oldest entry,
  // so starved serves appear whenever reordering happens at all, and the
  // run still drains.
  workloads::WorkloadParams params;
  params.num_cores = 4;
  params.accesses_per_core = 1000;
  SystemConfig cfg = base_cfg(4);
  cfg.hmc.closed_page = false;
  cfg.hmc.sched = hmc::SchedPolicy::kFrfcfs;
  cfg.hmc.sched_starve_cap = 1;
  const RunResult r = run_workload("sg", cfg, params);
  ASSERT_TRUE(r.report.drained);
  EXPECT_EQ(r.report.hmc.reads + r.report.hmc.writes,
            r.report.memory_requests);
}

TEST(SchedulerSystem, DeferredPolicyIdenticalUnderVaultParallelKnob) {
  // sched != fcfs forces the serial path even with exec.vault_parallel on;
  // flipping the knob must not change one byte of output.
  const auto mt = random_trace(7, 3, 500);
  for (const hmc::SchedPolicy policy :
       {hmc::SchedPolicy::kFrfcfs, hmc::SchedPolicy::kBatch}) {
    SystemConfig cfg = base_cfg(3);
    cfg.hmc.closed_page = false;
    cfg.hmc.sched = policy;
    const Observed serial = observe(cfg, mt);
    ASSERT_TRUE(serial.report.drained);
    SystemConfig wcfg = cfg;
    wcfg.exec.vault_parallel = true;
    const Observed weave = observe(wcfg, mt);
    EXPECT_EQ(weave.report.runtime, serial.report.runtime)
        << to_string(policy);
    EXPECT_EQ(weave.metrics, serial.metrics) << to_string(policy);
  }
}

TEST(SchedulerSystem, TinyQueueForcesOverflowServesAndStillDrains) {
  // vault_queue=1 exercises the forced-serve-on-full path on every
  // admission; the run must stay lossless under both deferred policies.
  const auto mt = random_trace(3, 2, 400);
  for (const hmc::SchedPolicy policy :
       {hmc::SchedPolicy::kFrfcfs, hmc::SchedPolicy::kBatch}) {
    SystemConfig cfg = base_cfg(2);
    cfg.hmc.closed_page = false;
    cfg.hmc.sched = policy;
    cfg.hmc.vault_queue_depth = 1;
    const Observed r = observe(cfg, mt);
    ASSERT_TRUE(r.report.drained) << to_string(policy);
    EXPECT_EQ(r.report.hmc.reads + r.report.hmc.writes,
              r.report.memory_requests)
        << to_string(policy);
  }
}

}  // namespace
}  // namespace hmcc::system
