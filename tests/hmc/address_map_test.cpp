#include "hmc/address_map.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hmcc::hmc {
namespace {

HmcConfig default_cfg() {
  HmcConfig cfg;
  EXPECT_TRUE(cfg.valid());
  return cfg;
}

TEST(AddressMap, ConfigDerivedQuantities) {
  const HmcConfig cfg = default_cfg();
  EXPECT_EQ(cfg.vaults_per_quadrant(), 8u);
  EXPECT_EQ(cfg.vault_capacity(), 256ULL << 20);
  EXPECT_EQ(cfg.rows_per_bank(), (256ULL << 20) / 16 / 4096);
}

TEST(AddressMap, ConsecutiveBlocksStripeAcrossVaults) {
  const HmcConfig cfg = default_cfg();
  AddressMap map(cfg);
  for (std::uint32_t b = 0; b < 64; ++b) {
    const DecodedAddr d = map.decode(static_cast<Addr>(b) * cfg.block_bytes);
    EXPECT_EQ(d.vault, b % cfg.num_vaults);
    EXPECT_EQ(d.offset, 0u);
  }
}

TEST(AddressMap, RequestWithinBlockSharesVaultBankRow) {
  const HmcConfig cfg = default_cfg();
  AddressMap map(cfg);
  const Addr base = 0x1234 * cfg.block_bytes;
  const DecodedAddr d0 = map.decode(base);
  for (std::uint32_t off = 1; off < cfg.block_bytes; ++off) {
    const DecodedAddr d = map.decode(base + off);
    EXPECT_EQ(d.vault, d0.vault);
    EXPECT_EQ(d.bank, d0.bank);
    EXPECT_EQ(d.row, d0.row);
    EXPECT_EQ(d.offset, off);
  }
}

TEST(AddressMap, EncodeDecodeRoundTrip) {
  const HmcConfig cfg = default_cfg();
  AddressMap map(cfg);
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const Addr addr = rng.below(cfg.capacity_bytes);
    const DecodedAddr d = map.decode(addr);
    EXPECT_EQ(map.encode(d), addr);
    EXPECT_LT(d.vault, cfg.num_vaults);
    EXPECT_LT(d.bank, cfg.banks_per_vault);
    EXPECT_LT(d.row, cfg.rows_per_bank());
    EXPECT_LT(d.column, cfg.row_bytes);
  }
}

TEST(AddressMap, AddressesAboveCapacityWrap) {
  const HmcConfig cfg = default_cfg();
  AddressMap map(cfg);
  const Addr addr = 0x123456;
  const DecodedAddr lo = map.decode(addr);
  const DecodedAddr hi = map.decode(addr + cfg.capacity_bytes);
  EXPECT_EQ(lo.vault, hi.vault);
  EXPECT_EQ(lo.bank, hi.bank);
  EXPECT_EQ(lo.row, hi.row);
  EXPECT_EQ(lo.column, hi.column);
}

TEST(AddressMap, SmallConfigDecodesExhaustively) {
  HmcConfig cfg;
  cfg.capacity_bytes = 1 << 20;
  cfg.num_vaults = 4;
  cfg.banks_per_vault = 4;
  cfg.num_links = 2;
  cfg.row_bytes = 1024;
  ASSERT_TRUE(cfg.valid());
  AddressMap map(cfg);
  for (Addr a = 0; a < cfg.capacity_bytes; a += 64) {
    EXPECT_EQ(map.encode(map.decode(a)), a);
  }
}

TEST(AddressMap, InvalidConfigsRejected) {
  HmcConfig cfg;
  cfg.num_vaults = 33;  // not a power of two
  EXPECT_FALSE(cfg.valid());
  cfg = HmcConfig{};
  cfg.row_bytes = 128;  // smaller than the block
  EXPECT_FALSE(cfg.valid());
  cfg = HmcConfig{};
  cfg.num_links = 3;  // vaults not divisible into quadrants
  EXPECT_FALSE(cfg.valid());
}

}  // namespace
}  // namespace hmcc::hmc
