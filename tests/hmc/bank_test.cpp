#include "hmc/bank.hpp"

#include <gtest/gtest.h>

namespace hmcc::hmc {
namespace {

HmcConfig cfg_closed() {
  HmcConfig cfg;
  cfg.closed_page = true;
  return cfg;
}

HmcConfig cfg_open() {
  HmcConfig cfg;
  cfg.closed_page = false;
  return cfg;
}

TEST(Bank, ClosedPageSingleAccessTiming) {
  const HmcConfig cfg = cfg_closed();
  Bank bank(cfg);
  const BankAccessResult r = bank.access(/*row=*/5, /*bytes=*/64, /*at=*/100);
  EXPECT_EQ(r.start, 100u);
  EXPECT_FALSE(r.conflict);
  EXPECT_FALSE(r.row_hit);
  // ACT + CAS + two 32B column bursts.
  EXPECT_EQ(r.data_ready, 100 + cfg.t_rcd + cfg.t_cl + 2 * cfg.t_column_burst);
  // Auto-precharge honors tRAS.
  const Cycle pre_start = std::max(r.data_ready, r.start + cfg.t_ras);
  EXPECT_EQ(r.bank_free, pre_start + cfg.t_rp);
  EXPECT_EQ(bank.activations(), 1u);
}

TEST(Bank, ClosedPageSameRowStillReactivates) {
  // The paper's motivating pathology: repeated small reads of one block
  // open/close the same row every time under closed-page.
  const HmcConfig cfg = cfg_closed();
  Bank bank(cfg);
  Cycle t = 0;
  for (int i = 0; i < 16; ++i) {
    const BankAccessResult r = bank.access(7, 16, t);
    t = r.bank_free;
  }
  EXPECT_EQ(bank.activations(), 16u);
  EXPECT_EQ(bank.row_hits(), 0u);
}

TEST(Bank, ClosedPageBackToBackConflicts) {
  const HmcConfig cfg = cfg_closed();
  Bank bank(cfg);
  const BankAccessResult r1 = bank.access(1, 64, 0);
  const BankAccessResult r2 = bank.access(2, 64, 10);
  EXPECT_TRUE(r2.conflict);
  EXPECT_EQ(r2.start, r1.bank_free);
  EXPECT_EQ(bank.conflicts(), 1u);
}

TEST(Bank, OpenPageRowHitSkipsActivation) {
  const HmcConfig cfg = cfg_open();
  Bank bank(cfg);
  const BankAccessResult r1 = bank.access(3, 64, 0);
  EXPECT_FALSE(r1.row_hit);
  const BankAccessResult r2 = bank.access(3, 64, r1.bank_free);
  EXPECT_TRUE(r2.row_hit);
  EXPECT_EQ(r2.data_ready,
            r2.start + cfg.t_cl + 2 * cfg.t_column_burst);
  EXPECT_EQ(bank.activations(), 1u);
  EXPECT_EQ(bank.row_hits(), 1u);
}

TEST(Bank, OpenPageRowMissPaysPrecharge) {
  const HmcConfig cfg = cfg_open();
  Bank bank(cfg);
  const BankAccessResult r1 = bank.access(3, 64, 0);
  const BankAccessResult r2 = bank.access(4, 64, r1.bank_free);
  EXPECT_FALSE(r2.row_hit);
  EXPECT_EQ(r2.data_ready, r2.start + cfg.t_rp + cfg.t_rcd + cfg.t_cl +
                               2 * cfg.t_column_burst);
}

TEST(Bank, OpenPageConflictHonorsRasBeforePrecharge) {
  // Regression: the open-page row-conflict path used to start the precharge
  // the moment the bank was free, even if the victim row had not yet been
  // active for tRAS. With a tRAS larger than one access's occupancy the
  // precharge must wait for activation + tRAS.
  HmcConfig cfg = cfg_open();
  cfg.t_ras = 400;  // default access occupancy is ~110 cycles, so tRAS binds
  Bank bank(cfg);
  const BankAccessResult r1 = bank.access(3, 64, 0);
  ASSERT_LT(r1.bank_free, cfg.t_ras);  // the scenario under test
  const BankAccessResult r2 = bank.access(4, 64, r1.bank_free);
  // Row 3 was activated at cycle 0: precharge may not start before tRAS,
  // then PRE + ACT + CAS + burst.
  EXPECT_EQ(r2.data_ready, cfg.t_ras + cfg.t_rp + cfg.t_rcd + cfg.t_cl +
                               2 * cfg.t_column_burst);
}

TEST(Bank, OpenPageConflictRasAnchorsToLatestActivation) {
  // The tRAS floor tracks the CURRENT open row's activation, not the first:
  // after a conflict re-activates at a later cycle, the next conflict's
  // precharge floor moves with it.
  HmcConfig cfg = cfg_open();
  cfg.t_ras = 400;
  Bank bank(cfg);
  bank.access(3, 64, 0);                                  // ACT row 3 @ 0
  const BankAccessResult r2 = bank.access(4, 64, 50);     // ACT row 4 later
  const Cycle act2 = cfg.t_ras + cfg.t_rp;                // row 4's ACT cycle
  const BankAccessResult r3 = bank.access(5, 64, r2.bank_free);
  EXPECT_EQ(r3.data_ready, act2 + cfg.t_ras + cfg.t_rp + cfg.t_rcd +
                               cfg.t_cl + 2 * cfg.t_column_burst);
}

TEST(Bank, OpenPageConflictUnchangedWhenRasAlreadyElapsed) {
  // When the victim row has been open far longer than tRAS the floor never
  // binds and the conflict pays exactly PRE + ACT + CAS + burst — the
  // pre-fix timing, which the default configuration always hits.
  const HmcConfig cfg = cfg_open();
  Bank bank(cfg);
  bank.access(3, 64, 0);
  const Cycle late = 10 * cfg.t_ras;
  const BankAccessResult r = bank.access(4, 64, late);
  EXPECT_EQ(r.data_ready, late + cfg.t_rp + cfg.t_rcd + cfg.t_cl +
                              2 * cfg.t_column_burst);
}

TEST(Bank, LargerPayloadStreamsMoreColumns) {
  const HmcConfig cfg = cfg_closed();
  Bank b64(cfg);
  Bank b256(cfg);
  const Cycle d64 = b64.access(0, 64, 0).data_ready;
  const Cycle d256 = b256.access(0, 256, 0).data_ready;
  EXPECT_EQ(d256 - d64, (8 - 2) * cfg.t_column_burst);
}

TEST(Bank, OneCoalescedReadBeatsSixteenSmall) {
  // End-to-end check of the §2.2.1 claim at the bank level: one 256 B read
  // finishes far sooner than sixteen dependent 16 B reads of the same block.
  const HmcConfig cfg = cfg_closed();
  Bank serial(cfg);
  Cycle t = 0;
  for (int i = 0; i < 16; ++i) t = serial.access(0, 16, t).bank_free;
  Bank coalesced(cfg);
  const Cycle one = coalesced.access(0, 256, 0).data_ready;
  EXPECT_LT(one * 4, t);
}

TEST(Bank, ResetClearsState) {
  const HmcConfig cfg = cfg_open();
  Bank bank(cfg);
  bank.access(1, 64, 0);
  bank.reset();
  EXPECT_EQ(bank.activations(), 0u);
  EXPECT_EQ(bank.busy_until(), 0u);
  const BankAccessResult r = bank.access(1, 64, 0);
  EXPECT_FALSE(r.row_hit);  // open row was forgotten
}

}  // namespace
}  // namespace hmcc::hmc
