#include "hmc/device.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace hmcc::hmc {
namespace {

RequestPacket make_read(ReqId id, Addr addr, std::uint32_t bytes) {
  RequestPacket p{};
  p.id = id;
  p.addr = addr;
  p.cmd = *command_for(ReqType::kLoad, bytes);
  return p;
}

RequestPacket make_write(ReqId id, Addr addr, std::uint32_t bytes) {
  RequestPacket p{};
  p.id = id;
  p.addr = addr;
  p.cmd = *command_for(ReqType::kStore, bytes);
  return p;
}

TEST(HmcDevice, SingleReadCompletesWithPlausibleLatency) {
  Kernel kernel;
  HmcDevice dev(kernel, HmcConfig{});
  bool done = false;
  ResponsePacket got{};
  dev.submit(make_read(1, 0x1000, 64), [&](const ResponsePacket& r) {
    done = true;
    got = r;
  });
  kernel.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.id, 1u);
  // An unloaded random access should land around 60-120 ns at 3.3 GHz; the
  // paper quotes >= 100 ns end-to-end including the processor-side path.
  EXPECT_GT(got.latency(), 200u);   // > ~60 ns
  EXPECT_LT(got.latency(), 1200u);  // < ~360 ns
  EXPECT_EQ(dev.outstanding(), 0u);
}

TEST(HmcDevice, WireAccountingMatchesPacketMath) {
  Kernel kernel;
  HmcDevice dev(kernel, HmcConfig{});
  int completions = 0;
  auto cb = [&](const ResponsePacket&) { ++completions; };
  dev.submit(make_read(1, 0, 64), cb);
  dev.submit(make_write(2, 256, 128), cb);
  kernel.run();
  EXPECT_EQ(completions, 2);
  const HmcStats s = dev.stats();
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.payload_bytes, 64u + 128u);
  EXPECT_EQ(s.transferred_bytes, (64u + 32u) + (128u + 32u));
  EXPECT_EQ(s.control_bytes, 64u);
  EXPECT_NEAR(s.bandwidth_efficiency(), 192.0 / 256.0, 1e-12);
}

TEST(HmcDevice, CoalescedReadFasterThanSixteenSmall) {
  // The paper's §2.2 end-to-end claim at device level.
  Kernel k1;
  HmcDevice dev1(k1, HmcConfig{});
  int pending = 16;
  for (int i = 0; i < 16; ++i) {
    dev1.submit(make_read(static_cast<ReqId>(i), 16u * static_cast<Addr>(i), 16),
                [&](const ResponsePacket&) { --pending; });
  }
  const Cycle small_total = k1.run();
  EXPECT_EQ(pending, 0);

  Kernel k2;
  HmcDevice dev2(k2, HmcConfig{});
  dev2.submit(make_read(99, 0, 256), [](const ResponsePacket&) {});
  const Cycle big_total = k2.run();
  EXPECT_LT(big_total, small_total);

  // And the transferred volume drops from 768 B to 288 B.
  EXPECT_EQ(dev1.stats().transferred_bytes, 768u);
  EXPECT_EQ(dev2.stats().transferred_bytes, 288u);
}

TEST(HmcDevice, SameBankRequestsSerializeDifferentVaultsParallel) {
  // Two reads of the same block target one bank: the second conflicts.
  Kernel k1;
  HmcDevice dev1(k1, HmcConfig{});
  Cycle first = 0;
  Cycle second = 0;
  dev1.submit(make_read(1, 0, 64),
              [&](const ResponsePacket& r) { first = r.completed_at; });
  dev1.submit(make_read(2, 64, 64),
              [&](const ResponsePacket& r) { second = r.completed_at; });
  k1.run();
  EXPECT_GT(dev1.stats().bank_conflicts, 0u);
  const Cycle same_bank_span = std::max(first, second);

  // Two reads striped across vaults overlap almost entirely.
  Kernel k2;
  HmcDevice dev2(k2, HmcConfig{});
  Cycle a = 0;
  Cycle b = 0;
  dev2.submit(make_read(1, 0, 64),
              [&](const ResponsePacket& r) { a = r.completed_at; });
  dev2.submit(make_read(2, 256, 64),
              [&](const ResponsePacket& r) { b = r.completed_at; });
  k2.run();
  EXPECT_EQ(dev2.stats().bank_conflicts, 0u);
  EXPECT_LT(std::max(a, b), same_bank_span);
}

TEST(HmcDevice, ManyRandomRequestsAllComplete) {
  Kernel kernel;
  HmcConfig cfg;
  HmcDevice dev(kernel, cfg);
  Xoshiro256 rng(7);
  const int kN = 2000;
  int completions = 0;
  for (int i = 0; i < kN; ++i) {
    const std::uint32_t bytes = 16u << rng.below(4);  // 16..128
    Addr addr = rng.below(cfg.capacity_bytes);
    addr = align_down(addr, cfg.block_bytes);  // keep inside one block
    dev.submit(make_read(static_cast<ReqId>(i), addr, bytes),
               [&](const ResponsePacket&) { ++completions; });
  }
  kernel.run();
  EXPECT_EQ(completions, kN);
  EXPECT_EQ(dev.outstanding(), 0u);
  EXPECT_GT(dev.stats().latency.mean(), 0.0);
}

TEST(HmcDevice, ResponsesOfEqualPacketsAreFifoPerVault) {
  Kernel kernel;
  HmcDevice dev(kernel, HmcConfig{});
  std::vector<ReqId> order;
  for (int i = 0; i < 4; ++i) {
    dev.submit(make_read(static_cast<ReqId>(i), 0x10000, 64),
               [&order](const ResponsePacket& r) { order.push_back(r.id); });
  }
  kernel.run();
  EXPECT_EQ(order, (std::vector<ReqId>{0, 1, 2, 3}));
}

TEST(HmcDevice, WeaveHandlesArrivalOneCycleAfterSubmit) {
  // Kernel-boundary regression for arm_weave: with a 1-cycle SerDes and a
  // free crossbar the vault arrival of a submit at cycle `now` is exactly
  // `now + 1`, which drives the weave deadline `min(now + bound, arrival-1)`
  // to `now` itself — the earliest cycle schedule_at() accepts. The weave
  // run must complete every request and match the serial timing exactly.
  HmcConfig cfg;
  cfg.serdes_latency = 1;
  cfg.xbar_latency = 0;
  cfg.cycles_per_flit = 0;
  ASSERT_TRUE(cfg.valid());

  auto run = [&](bool weave) {
    Kernel kernel;
    HmcDevice dev(kernel, cfg);
    if (weave) dev.enable_vault_parallel(/*bound=*/256, /*threads=*/2);
    std::vector<Cycle> completions;
    for (int i = 0; i < 32; ++i) {
      dev.submit(make_read(static_cast<ReqId>(i),
                           static_cast<Addr>(i) * 4096, 64),
                 [&completions](const ResponsePacket& r) {
                   completions.push_back(r.completed_at);
                 });
    }
    kernel.run();
    EXPECT_EQ(dev.outstanding(), 0u);
    return completions;
  };

  const std::vector<Cycle> serial = run(false);
  const std::vector<Cycle> woven = run(true);
  ASSERT_EQ(serial.size(), 32u);
  EXPECT_EQ(woven, serial);
}

TEST(HmcDevice, ResetStatsZeroesWire) {
  Kernel kernel;
  HmcDevice dev(kernel, HmcConfig{});
  dev.submit(make_read(1, 0, 64), [](const ResponsePacket&) {});
  kernel.run();
  dev.reset_stats();
  const HmcStats s = dev.stats();
  EXPECT_EQ(s.reads, 0u);
  EXPECT_EQ(s.transferred_bytes, 0u);
  EXPECT_EQ(s.row_activations, 0u);
}

}  // namespace
}  // namespace hmcc::hmc
