#include <gtest/gtest.h>

#include "hmc/link.hpp"
#include "hmc/vault.hpp"

namespace hmcc::hmc {
namespace {

HmcConfig cfg() { return HmcConfig{}; }

DecodedAddr at(std::uint32_t vault, std::uint32_t bank, std::uint64_t row) {
  DecodedAddr d{};
  d.vault = vault;
  d.bank = bank;
  d.row = row;
  return d;
}

TEST(Vault, ControllerPipelinesAcrossBanks) {
  const HmcConfig c = cfg();
  Vault v(c, 0);
  // Two requests to different banks arriving together: the second is only
  // delayed by the controller slot, not by the first bank's busy time.
  const auto r1 = v.serve(at(0, 0, 1), 64, 100);
  const auto r2 = v.serve(at(0, 1, 1), 64, 100);
  EXPECT_EQ(r2.data_ready - r1.data_ready, c.vault_ctrl_latency);
  EXPECT_FALSE(r2.bank_conflict);
  EXPECT_EQ(v.requests_served(), 2u);
}

TEST(Vault, SameBankSerializesWithConflict) {
  const HmcConfig c = cfg();
  Vault v(c, 3);
  const auto r1 = v.serve(at(3, 5, 1), 64, 0);
  const auto r2 = v.serve(at(3, 5, 2), 64, 0);
  EXPECT_TRUE(r2.bank_conflict);
  EXPECT_GT(r2.data_ready, r1.data_ready + c.t_rp);  // waited for row cycle
  EXPECT_EQ(v.bank_conflicts(), 1u);
  EXPECT_EQ(v.row_activations(), 2u);
}

TEST(Vault, ResetRestoresIdle) {
  Vault v(cfg(), 1);
  v.serve(at(1, 0, 0), 64, 0);
  v.reset();
  EXPECT_EQ(v.requests_served(), 0u);
  EXPECT_EQ(v.bank_conflicts(), 0u);
  const auto r = v.serve(at(1, 0, 0), 64, 0);
  EXPECT_EQ(r.data_ready, cfg().vault_ctrl_latency + cfg().t_rcd +
                              cfg().t_cl + 2 * cfg().t_column_burst)
      << "timing should match a cold vault";
  EXPECT_FALSE(r.bank_conflict);
}

TEST(Link, SerializesFlits) {
  const HmcConfig c = cfg();
  Link link(c);
  // A 17-FLIT 256 B read response occupies the channel for 17 cycles.
  const Cycle done1 = link.send_response(17, 100);
  EXPECT_EQ(done1, 100 + 17 * c.cycles_per_flit);
  // The next packet queues behind it even if it "arrives" earlier.
  const Cycle done2 = link.send_response(2, 50);
  EXPECT_EQ(done2, done1 + 2 * c.cycles_per_flit);
  EXPECT_EQ(link.response_flits_sent(), 19u);
}

TEST(Link, RequestAndResponseChannelsIndependent) {
  Link link(cfg());
  const Cycle req = link.send_request(10, 0);
  const Cycle resp = link.send_response(10, 0);
  EXPECT_EQ(req, resp);  // full duplex: no interference
  EXPECT_EQ(link.request_flits_sent(), 10u);
  EXPECT_EQ(link.response_flits_sent(), 10u);
}

TEST(Link, IdleChannelStartsImmediately) {
  Link link(cfg());
  link.send_request(4, 0);
  // After the channel drains, a later packet starts at its arrival time.
  const Cycle done = link.send_request(1, 1000);
  EXPECT_EQ(done, 1000 + cfg().cycles_per_flit);
}

TEST(Link, ResetClearsCountsAndTime) {
  Link link(cfg());
  link.send_request(8, 0);
  link.reset();
  EXPECT_EQ(link.request_flits_sent(), 0u);
  EXPECT_EQ(link.send_request(1, 0), cfg().cycles_per_flit);
}

}  // namespace
}  // namespace hmcc::hmc
