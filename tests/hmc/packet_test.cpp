#include "hmc/packet.hpp"

#include <gtest/gtest.h>

namespace hmcc::hmc {
namespace {

TEST(Packet, CommandForAllLegalSizes) {
  for (std::uint32_t s = 16; s <= 128; s += 16) {
    auto rd = command_for(ReqType::kLoad, s);
    ASSERT_TRUE(rd.has_value()) << s;
    EXPECT_TRUE(is_read(*rd));
    EXPECT_EQ(payload_bytes(*rd), s);
    auto wr = command_for(ReqType::kStore, s);
    ASSERT_TRUE(wr.has_value()) << s;
    EXPECT_FALSE(is_read(*wr));
    EXPECT_EQ(payload_bytes(*wr), s);
  }
  EXPECT_EQ(payload_bytes(*command_for(ReqType::kLoad, 256)), 256u);
  EXPECT_EQ(payload_bytes(*command_for(ReqType::kStore, 256)), 256u);
}

TEST(Packet, CommandForRejectsIllegalSizes) {
  EXPECT_FALSE(command_for(ReqType::kLoad, 0).has_value());
  EXPECT_FALSE(command_for(ReqType::kLoad, 8).has_value());
  EXPECT_FALSE(command_for(ReqType::kLoad, 65).has_value());
  EXPECT_FALSE(command_for(ReqType::kLoad, 144).has_value());
  EXPECT_FALSE(command_for(ReqType::kLoad, 192).has_value());
  EXPECT_FALSE(command_for(ReqType::kLoad, 512).has_value());
}

TEST(Packet, RoundUpRequestSize) {
  EXPECT_EQ(round_up_request_size(1), 16u);
  EXPECT_EQ(round_up_request_size(16), 16u);
  EXPECT_EQ(round_up_request_size(17), 32u);
  EXPECT_EQ(round_up_request_size(128), 128u);
  EXPECT_EQ(round_up_request_size(129), 256u);  // 144..240 not representable
  EXPECT_EQ(round_up_request_size(256), 256u);
  EXPECT_EQ(round_up_request_size(0), 16u);
}

TEST(Packet, FlitArithmeticRead) {
  RequestPacket p{};
  p.cmd = *command_for(ReqType::kLoad, 16);
  // Paper §2.2.2: a 16 B load moves 48 B total (16 B req + 32 B resp).
  EXPECT_EQ(p.request_flits(), 1u);
  EXPECT_EQ(p.response_flits(), 2u);
  EXPECT_EQ(p.transferred_bytes(), 48u);
  EXPECT_EQ(p.control_bytes(), 32u);

  p.cmd = *command_for(ReqType::kLoad, 256);
  // Paper: "a single coalesced 256B load request only requires 288B".
  EXPECT_EQ(p.transferred_bytes(), 288u);
  EXPECT_EQ(p.control_bytes(), 32u);
}

TEST(Packet, FlitArithmeticWrite) {
  RequestPacket p{};
  p.cmd = *command_for(ReqType::kStore, 64);
  EXPECT_EQ(p.request_flits(), 5u);   // header + 4 data FLITs
  EXPECT_EQ(p.response_flits(), 1u);  // response is control-only
  EXPECT_EQ(p.transferred_bytes(), 96u);
  EXPECT_EQ(p.control_bytes(), 32u);
}

TEST(Packet, SixteenSmallLoadsVsOneCoalesced) {
  // The motivating example of §2.2.2: 16x16B loads vs 1x256B load.
  RequestPacket small{};
  small.cmd = *command_for(ReqType::kLoad, 16);
  EXPECT_EQ(16 * small.transferred_bytes(), 768u);
  EXPECT_EQ(16 * small.control_bytes(), 512u);
  RequestPacket big{};
  big.cmd = *command_for(ReqType::kLoad, 256);
  EXPECT_EQ(big.transferred_bytes(), 288u);
  EXPECT_EQ(big.control_bytes(), 32u);
}

TEST(Packet, BandwidthEfficiencyFigure1Endpoints) {
  // Paper Figure 1: 33.33% at 16 B rising to 88.89% at 256 B.
  EXPECT_NEAR(bandwidth_efficiency(16), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(bandwidth_efficiency(256), 8.0 / 9.0, 1e-9);
  EXPECT_NEAR(control_overhead(16), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(control_overhead(256), 1.0 / 9.0, 1e-9);
  // Monotone increasing in request size.
  double prev = 0.0;
  for (std::uint32_t s = 16; s <= 256; s += 16) {
    EXPECT_GT(bandwidth_efficiency(s), prev);
    prev = bandwidth_efficiency(s);
  }
}

TEST(Packet, CoalescingGainMatchesPaperNumbers) {
  // §2.2.2: 2.67x bandwidth-efficiency improvement, 15x control reduction.
  EXPECT_NEAR(bandwidth_efficiency(256) / bandwidth_efficiency(16), 8.0 / 3.0,
              1e-9);
  RequestPacket small{};
  small.cmd = *command_for(ReqType::kLoad, 16);
  RequestPacket big{};
  big.cmd = *command_for(ReqType::kLoad, 256);
  EXPECT_EQ(16 * small.control_bytes() / big.control_bytes(), 16u);
}

TEST(Packet, WireHeaderRoundTrip) {
  WireHeader h{};
  h.cub = 5;
  h.adrs = 0x3'FFFF'FFFAULL;  // 34 bits
  h.tag = 0x1AB;
  h.lng = 9;
  h.cmd = 0x77;
  const WireHeader back = decode_header(encode_header(h));
  EXPECT_EQ(back.cub, h.cub);
  EXPECT_EQ(back.adrs, h.adrs);
  EXPECT_EQ(back.tag, h.tag);
  EXPECT_EQ(back.lng, h.lng);
  EXPECT_EQ(back.cmd, h.cmd);
}

TEST(Packet, WireHeaderFieldMasking) {
  WireHeader h{};
  h.cub = 0xFF;         // only 3 bits survive
  h.tag = 0xFFFF;       // only 9 bits survive
  h.cmd = 0xFF;         // only 7 bits survive
  const WireHeader back = decode_header(encode_header(h));
  EXPECT_EQ(back.cub, 7);
  EXPECT_EQ(back.tag, 0x1FF);
  EXPECT_EQ(back.cmd, 0x7F);
}

}  // namespace
}  // namespace hmcc::hmc
