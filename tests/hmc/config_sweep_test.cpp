// Parameterized sweep over HMC geometries: address mapping must stay a
// bijection and the device must complete random traffic for every legal
// (capacity, vaults, banks, links) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "hmc/device.hpp"

namespace hmcc::hmc {
namespace {

// (capacity_gb, vaults, banks, links, closed_page)
using Geometry = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t,
                            std::uint32_t, bool>;

class HmcGeometryTest : public ::testing::TestWithParam<Geometry> {
 protected:
  HmcConfig make_config() const {
    const auto [gb, vaults, banks, links, closed] = GetParam();
    HmcConfig cfg;
    cfg.capacity_bytes = gb << 30;
    cfg.num_vaults = vaults;
    cfg.banks_per_vault = banks;
    cfg.num_links = links;
    cfg.closed_page = closed;
    return cfg;
  }
};

TEST_P(HmcGeometryTest, ConfigIsValid) {
  EXPECT_TRUE(make_config().valid());
}

TEST_P(HmcGeometryTest, AddressMapBijective) {
  const HmcConfig cfg = make_config();
  AddressMap map(cfg);
  Xoshiro256 rng(77);
  for (int i = 0; i < 3000; ++i) {
    const Addr a = rng.below(cfg.capacity_bytes);
    const DecodedAddr d = map.decode(a);
    EXPECT_EQ(map.encode(d), a);
    EXPECT_LT(d.vault, cfg.num_vaults);
    EXPECT_LT(d.bank, cfg.banks_per_vault);
  }
}

TEST_P(HmcGeometryTest, RandomTrafficCompletes) {
  const HmcConfig cfg = make_config();
  Kernel kernel;
  HmcDevice dev(kernel, cfg);
  Xoshiro256 rng(99);
  int completions = 0;
  const int kN = 400;
  for (int i = 0; i < kN; ++i) {
    RequestPacket p{};
    p.id = static_cast<ReqId>(i);
    const bool is_read = rng.chance(0.7);
    const std::uint32_t bytes = rng.chance(0.5) ? 64 : 256;
    p.cmd = *command_for(is_read ? ReqType::kLoad : ReqType::kStore, bytes);
    p.addr = align_down(rng.below(cfg.capacity_bytes), 256);
    dev.submit(p, [&completions](const ResponsePacket&) { ++completions; });
  }
  kernel.run();
  EXPECT_EQ(completions, kN);
  EXPECT_EQ(dev.outstanding(), 0u);
  const HmcStats s = dev.stats();
  EXPECT_EQ(s.reads + s.writes, static_cast<std::uint64_t>(kN));
  EXPECT_GT(s.bandwidth_efficiency(), 0.5);  // 64/256B payloads dominate
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HmcGeometryTest,
    ::testing::Values(Geometry{8, 32, 16, 4, true},   // paper platform
                      Geometry{8, 32, 16, 4, false},  // open page
                      Geometry{4, 16, 8, 2, true},    // half-size cube
                      Geometry{2, 16, 16, 4, true},   // 2 GB HMC gen1-ish
                      Geometry{8, 32, 8, 8, true},    // more links
                      Geometry{1, 8, 4, 1, true}),    // minimal cube
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "gb" + std::to_string(std::get<0>(info.param)) + "_v" +
             std::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param)) + "_l" +
             std::to_string(std::get<3>(info.param)) +
             (std::get<4>(info.param) ? "_closed" : "_open");
    });

}  // namespace
}  // namespace hmcc::hmc
