// Suite registry invariants: both drivers (standalone binaries, bench_suite)
// and the bench-service daemon consume the same registry, so its entries
// must be complete and the drivers must agree byte-for-byte on output.
#include "suite/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "suite/service_adapter.hpp"
#include "system/config_bridge.hpp"
#include "system/job_manager.hpp"

namespace hmcc::bench {
namespace {

// Small but nonzero workload: enough for every bench to produce real rows
// without dominating the tier-1 test budget (bench_suite --smoke uses 500).
constexpr const char* kSmokeAccesses = "accesses=400";

TEST(SuiteRegistry, NamesAreUniqueAndLookupWorks) {
  std::set<std::string> names;
  for (const SuiteBench& b : suite_benches()) {
    EXPECT_TRUE(names.insert(b.meta.name).second) << "duplicate bench " << b.meta.name;
    EXPECT_EQ(find_bench(b.meta.name), &b);
  }
  EXPECT_GE(names.size(), 12u);
  EXPECT_EQ(find_bench("no-such-bench"), nullptr);
}

TEST(SuiteRegistry, EveryBenchIsFullyPopulated) {
  Config cli;
  cli.set("accesses", "100");
  for (const SuiteBench& b : suite_benches()) {
    SCOPED_TRACE(b.meta.name);
    EXPECT_FALSE(b.meta.title.empty());
    EXPECT_FALSE(b.meta.paper_note.empty());
    EXPECT_GT(b.meta.default_accesses, 0u);
    ASSERT_TRUE(static_cast<bool>(b.format));
    ASSERT_TRUE(static_cast<bool>(b.tasks));
    // A non-empty task list is what lets the suite scheduler and the
    // service's cooperative timeout see the bench's work at all.
    const BenchEnv env = make_env(cli, b.meta.name.c_str(), b.meta.default_accesses);
    EXPECT_FALSE(b.tasks(env).empty());
  }
}

TEST(SuiteRegistry, KnobInfoCoversEveryAcceptedKey) {
  const auto& knobs = suite_knob_info();
  std::set<std::string> seen;
  const std::set<std::string> kinds = {"uint", "bool", "enum", "string"};
  for (const KnobInfo& k : knobs) {
    SCOPED_TRACE(k.name);
    EXPECT_TRUE(seen.insert(k.name).second) << "duplicate knob";
    EXPECT_TRUE(kinds.count(k.kind)) << "bad kind " << k.kind;
    EXPECT_TRUE(k.scope == "bench" || k.scope == "platform") << k.scope;
    EXPECT_FALSE(k.doc.empty());
  }
  // Exactly the keys the parsers accept: the harness keys plus every
  // platform key, nothing more, nothing missing.
  for (const std::string& key : bench_cli_keys()) {
    EXPECT_TRUE(seen.count(key)) << "harness knob missing: " << key;
  }
  for (const std::string& key : system::platform_cli_keys()) {
    EXPECT_TRUE(seen.count(key)) << "platform knob missing: " << key;
  }
  EXPECT_EQ(knobs.size(),
            bench_cli_keys().size() + system::platform_cli_keys().size());
}

TEST(SuiteRegistry, StandaloneDriverSmokesEveryBench) {
  for (const SuiteBench& b : suite_benches()) {
    SCOPED_TRACE(b.meta.name);
    std::vector<std::string> args = {"bench", kSmokeAccesses, "csv=",
                                     "threads=1"};
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (std::string& a : args) argv.push_back(a.data());
    testing::internal::CaptureStdout();
    const int rc = run_standalone(b, static_cast<int>(argv.size()),
                                  argv.data());
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_EQ(rc, 0);
    EXPECT_NE(out.find("=== " + b.meta.title + " ==="), std::string::npos);
    EXPECT_NE(out.find(b.meta.paper_note), std::string::npos);
  }
}

// Run a bench through the service adapter on a real JobManager (the only
// way to obtain a JobContext) and hand back the job's output.
system::JobOutput run_via_service(const SuiteBench& bench,
                                  const Config& overrides) {
  system::JobManager mgr(
      {/*sweep_threads=*/1, /*job_workers=*/1, /*max_queued_jobs=*/4,
       /*default_timeout=*/std::chrono::milliseconds{0}});
  auto id = mgr.submit(bench.meta.name, [&](const system::JobContext& ctx) {
    return run_bench_job(bench, overrides, ctx);
  });
  EXPECT_TRUE(id.has_value());
  mgr.drain();
  auto snap = mgr.status(*id);
  EXPECT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, system::JobState::kDone) << snap->error;
  return snap->output;
}

TEST(SuiteRegistry, ServiceDriverMatchesStandaloneByteForByte) {
  // fig08 is a real sweep bench with no epilogue, so the standalone stdout
  // differs from the in-memory payload only by emit()'s trailing blank line.
  const SuiteBench* bench = find_bench("fig08");
  ASSERT_NE(bench, nullptr);
  ASSERT_FALSE(static_cast<bool>(bench->epilogue));

  std::vector<std::string> args = {"bench", kSmokeAccesses, "seed=2", "csv=",
                                   "threads=1"};
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  testing::internal::CaptureStdout();
  ASSERT_EQ(run_standalone(*bench, static_cast<int>(argv.size()),
                           argv.data()),
            0);
  const std::string standalone = testing::internal::GetCapturedStdout();

  Config overrides;
  overrides.set("accesses", "400");
  overrides.set("seed", "2");
  const system::JobOutput job = run_via_service(*bench, overrides);

  EXPECT_EQ(job.text + "\n", standalone);
  EXPECT_FALSE(job.csv.empty());
  EXPECT_NE(job.csv.find('\n'), std::string::npos);
}

TEST(SuiteRegistry, ServiceJobCapturesEpilogueInPayload) {
  const SuiteBench* bench = find_bench("fig10");
  ASSERT_NE(bench, nullptr);
  ASSERT_TRUE(static_cast<bool>(bench->epilogue));
  Config overrides;
  overrides.set("accesses", "400");
  const system::JobOutput job = run_via_service(*bench, overrides);
  EXPECT_NE(job.text.find("16B-load share:"), std::string::npos);
}

TEST(SuiteRegistry, ServiceBenchesMirrorTheRegistry) {
  const auto wrapped = service_benches();
  const auto& benches = suite_benches();
  ASSERT_EQ(wrapped.size(), benches.size());
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    SCOPED_TRACE(benches[i].meta.name);
    EXPECT_EQ(wrapped[i].name, benches[i].meta.name);
    ASSERT_TRUE(wrapped[i].metadata.is_object());
    const auto* name = wrapped[i].metadata.find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->as_string(), benches[i].meta.name);
    const auto* accesses = wrapped[i].metadata.find("default_accesses");
    ASSERT_NE(accesses, nullptr);
    EXPECT_EQ(accesses->as_int(),
              static_cast<std::int64_t>(benches[i].meta.default_accesses));
    EXPECT_TRUE(static_cast<bool>(wrapped[i].run));
  }
  const auto knobs = knob_metadata_json();
  ASSERT_TRUE(knobs.is_array());
  EXPECT_EQ(knobs.as_array().size(), suite_knob_info().size());
}

}  // namespace
}  // namespace hmcc::bench
