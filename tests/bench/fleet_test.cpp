// Fleet driver tests: endpoint parsing, the LPT shard assignment, and the
// full wire round-trip — run_fleet against real in-process hmc_coalescerd
// stacks (HttpServer + BenchService + the real registry) must reproduce the
// local bench_suite output byte for byte.
#include "suite/fleet.hpp"

#include <gtest/gtest.h>

#include <any>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/http.hpp"
#include "service/service.hpp"
#include "suite/registry.hpp"
#include "suite/service_adapter.hpp"

namespace hmcc::bench {
namespace {

TEST(FleetEndpoints, ParsesHostPortLists) {
  std::vector<FleetEndpoint> eps;
  std::string err;
  ASSERT_TRUE(parse_fleet_endpoints("127.0.0.1:7780,10.0.0.2:8000", eps, err));
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].host, "127.0.0.1");
  EXPECT_EQ(eps[0].port, 7780);
  EXPECT_EQ(eps[1].host, "10.0.0.2");
  EXPECT_EQ(eps[1].port, 8000);

  // A bare port means localhost.
  ASSERT_TRUE(parse_fleet_endpoints("9000", eps, err));
  ASSERT_EQ(eps.size(), 1u);
  EXPECT_EQ(eps[0].host, "127.0.0.1");
  EXPECT_EQ(eps[0].port, 9000);
}

TEST(FleetEndpoints, RejectsMalformedSpecs) {
  std::vector<FleetEndpoint> eps;
  std::string err;
  for (const char* bad : {"", ",", "host:", ":7780", "host:0", "host:99999",
                          "host:12ab", "host:-1"}) {
    EXPECT_FALSE(parse_fleet_endpoints(bad, eps, err)) << bad;
    EXPECT_FALSE(err.empty());
  }
}

TEST(FleetAssign, LptBalancesAndStaysDeterministic) {
  // Costs 10,9,2,1 over 2 workers: 10 -> w0, 9 -> w1, 2 -> w1 (load 9<10),
  // 1 -> w0 is wrong (load 10 vs 11)... LPT: after 2 -> w1 loads are
  // 11/12(+1s), so 1 goes to w0.
  const std::vector<std::uint64_t> costs = {10, 9, 2, 1};
  const auto a = assign_lpt(costs, 2);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(a[1], 1u);
  EXPECT_EQ(a[2], 1u);
  EXPECT_EQ(a[3], 0u);
  // Deterministic: same input, same assignment.
  EXPECT_EQ(assign_lpt(costs, 2), a);
}

TEST(FleetAssign, ZeroCostShardsSpreadInsteadOfPilingOnWorkerZero) {
  const std::vector<std::uint64_t> costs = {0, 0, 0, 0};
  const auto a = assign_lpt(costs, 2);
  int w0 = 0;
  for (const std::size_t w : a) w0 += w == 0 ? 1 : 0;
  EXPECT_EQ(w0, 2);
}

// ---------------------------------------------------------------------------
// End-to-end against real in-process workers.

struct Worker {
  Worker()
      : svc(service_benches(), job_options()),
        server(server_options(),
               [this](const service::HttpRequest& req) {
                 return svc.handle(req);
               }),
        thread([this] { server.serve(); }) {}

  ~Worker() {
    server.request_stop();
    thread.join();
    svc.begin_drain();
    svc.drain();
  }

  static system::JobManager::Options job_options() {
    system::JobManager::Options o;
    o.sweep_threads = 1;
    o.job_workers = 1;
    o.max_queued_jobs = 8;
    return o;
  }

  static service::HttpServer::Options server_options() {
    service::HttpServer::Options o;
    o.port = 0;
    return o;
  }

  service::BenchService svc;
  service::HttpServer server;
  std::thread thread;
};

/// What the local bench_suite driver would print for @p b with no CSV:
/// header, table in input order, blank line, epilogue.
std::string local_stdout(const SuiteBench& b, const Config& cli) {
  BenchEnv env = make_env(cli, b.meta.name.c_str(), b.meta.default_accesses);
  env.csv_path.clear();
  std::vector<SuiteTask> tasks =
      b.tasks ? b.tasks(env) : std::vector<SuiteTask>{};
  std::vector<std::any> results;
  results.reserve(tasks.size());
  for (SuiteTask& t : tasks) results.push_back(t());
  const Table table = b.format(env, results);
  std::string out;
  if (b.preamble) out += b.preamble(env, results);
  out += "=== " + b.meta.title + " ===\n" + b.meta.paper_note + "\n" +
         table.to_ascii() + "\n";
  if (b.epilogue) out += b.epilogue(env, results);
  return out;
}

Config small_cli() {
  Config cli;
  cli.set("accesses", "400");
  cli.set("seed", "2");
  cli.set("nocsv", "1");
  return cli;
}

TEST(FleetRun, MatchesLocalOutputByteForByte) {
  Worker w1;
  Worker w2;
  const SuiteBench* fig08 = find_bench("fig08");
  const SuiteBench* fig10 = find_bench("fig10");
  const SuiteBench* ablation = find_bench("ablation_pipeline");
  ASSERT_NE(fig08, nullptr);
  ASSERT_NE(fig10, nullptr);
  ASSERT_NE(ablation, nullptr);
  // fig10 has an epilogue, ablation_pipeline a preamble, fig08 neither —
  // every reconstruction path of the merge runs.
  ASSERT_TRUE(static_cast<bool>(fig10->epilogue));
  ASSERT_TRUE(static_cast<bool>(ablation->preamble));
  const std::vector<const SuiteBench*> selected = {fig08, fig10, ablation};

  const Config cli = small_cli();
  FleetOptions opts;
  opts.endpoints = {{"127.0.0.1", w1.server.port()},
                    {"127.0.0.1", w2.server.port()}};
  opts.poll_interval_ms = 2;

  testing::internal::CaptureStdout();
  const int failures = run_fleet(cli, /*smoke=*/false, selected, opts);
  const std::string fleet_out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(failures, 0);

  const std::string expected = local_stdout(*fig08, cli) +
                               local_stdout(*fig10, cli) +
                               local_stdout(*ablation, cli);
  EXPECT_EQ(fleet_out, expected);
}

TEST(FleetRun, WritesCsvFilesByteIdenticalToLocal) {
  Worker w;
  const SuiteBench* fig08 = find_bench("fig08");
  ASSERT_NE(fig08, nullptr);
  const std::string csv_path = testing::TempDir() + "fleet_fig08_test.csv";
  std::remove(csv_path.c_str());

  Config cli;
  cli.set("accesses", "400");
  cli.set("csv", csv_path);

  FleetOptions opts;
  opts.endpoints = {{"127.0.0.1", w.server.port()}};
  opts.poll_interval_ms = 2;

  testing::internal::CaptureStdout();
  const int failures = run_fleet(cli, /*smoke=*/false, {fig08}, opts);
  const std::string fleet_out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(failures, 0);
  EXPECT_NE(fleet_out.find("(rows written to " + csv_path + ")"),
            std::string::npos);

  // The file must hold exactly what the local Table::write_csv would emit.
  BenchEnv env = make_env(cli, "fig08", fig08->meta.default_accesses);
  std::vector<SuiteTask> tasks = fig08->tasks(env);
  std::vector<std::any> results;
  for (SuiteTask& t : tasks) results.push_back(t());
  const std::string expected_csv = fig08->format(env, results).to_csv();

  std::ifstream in(csv_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(), expected_csv);
  std::remove(csv_path.c_str());
}

TEST(FleetRun, UnreachableWorkerFailsEveryShardUpFront) {
  // Grab a port the kernel just released: nothing listens there anymore.
  std::uint16_t dead_port = 0;
  {
    service::HttpServer probe({}, [](const service::HttpRequest&) {
      return service::HttpResponse{};
    });
    dead_port = probe.port();
  }
  const SuiteBench* fig08 = find_bench("fig08");
  ASSERT_NE(fig08, nullptr);
  FleetOptions opts;
  opts.endpoints = {{"127.0.0.1", dead_port}};
  opts.http_timeout_ms = 500;
  testing::internal::CaptureStdout();
  const int failures = run_fleet(small_cli(), false, {fig08}, opts);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(failures, 1);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace hmcc::bench
