#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hmcc {
namespace {

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(rb.push(i));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(99));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rb.pop(), i);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapAround) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.pop(), 1);
  rb.push(3);
  rb.push(4);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
}

TEST(RingBuffer, IndexedAccess) {
  RingBuffer<int> rb(5);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  rb.pop();
  rb.push(40);
  EXPECT_EQ(rb.at(0), 20);
  EXPECT_EQ(rb.at(1), 30);
  EXPECT_EQ(rb.at(2), 40);
  EXPECT_EQ(rb.front(), 20);
}

TEST(RingBuffer, EraseMiddlePreservesOrder) {
  RingBuffer<int> rb(4);
  for (int i = 1; i <= 4; ++i) rb.push(i);
  rb.erase_at(1);  // remove 2
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.at(0), 1);
  EXPECT_EQ(rb.at(1), 3);
  EXPECT_EQ(rb.at(2), 4);
  rb.erase_at(2);  // remove 4
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb.at(1), 3);
  rb.erase_at(0);
  EXPECT_EQ(rb.front(), 3);
}

TEST(RingBuffer, EraseAcrossWrap) {
  RingBuffer<std::string> rb(3);
  rb.push("a");
  rb.push("b");
  rb.pop();
  rb.push("c");
  rb.push("d");  // storage wrapped
  rb.erase_at(1);  // remove "c"
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb.at(0), "b");
  EXPECT_EQ(rb.at(1), "d");
}

TEST(RingBuffer, Clear) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.push(5));
  EXPECT_EQ(rb.front(), 5);
}

}  // namespace
}  // namespace hmcc
