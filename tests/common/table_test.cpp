#include "common/table.hpp"

#include <gtest/gtest.h>

namespace hmcc {
namespace {

TEST(Table, AsciiAlignment) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"x,y", "quote\"inside"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("only,,"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::pct(0.4747, 2), "47.47%");
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"k"});
  t.add_row({"v"});
  const std::string path = ::testing::TempDir() + "/hmcc_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_STREQ(buf, "k\nv\n");
}

}  // namespace
}  // namespace hmcc
