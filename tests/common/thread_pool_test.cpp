#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hmcc {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);

  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1u);
  auto fut = pool.submit([] { return 42; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ExceptionsTravelThroughTheFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW((void)bad.get(), std::runtime_error);
  // A throwing task must not take the worker down with it.
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, MoveOnlyCallablesAndResults) {
  ThreadPool pool(2);
  auto ptr = std::make_unique<int>(99);
  auto fut = pool.submit(
      [p = std::move(ptr)] { return std::make_unique<int>(*p + 1); });
  EXPECT_EQ(*fut.get(), 100);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    // One long task keeps the single worker busy while the rest queue up;
    // destruction must run them all, not drop them.
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      }));
    }
    futures.clear();  // abandoned futures still must not break promises
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, BoundedQueueAppliesBackpressure) {
  ThreadPool pool(1, /*max_queued=*/2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  // With a backlog bound of 2 this loop cannot race ahead of the worker by
  // more than bound + in-flight; all tasks must still complete exactly once.
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    EXPECT_LE(pool.queued(), 2u);
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, TrySubmitRefusesInsteadOfBlockingWhenFull) {
  ThreadPool pool(1, /*max_queued=*/1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  // Occupy the single worker, then fill the one queue slot. Wait for the
  // blocker to leave the queue — until then it holds the slot itself.
  std::atomic<bool> started{false};
  auto running = pool.submit([&started, gate] {
    started = true;
    gate.wait();
  });
  while (!started.load()) std::this_thread::yield();
  auto queued = pool.try_submit([] { return 1; });
  ASSERT_TRUE(queued.has_value());
  // Queue is now at its bound: try_submit must refuse immediately where
  // submit() would block the caller.
  auto refused = pool.try_submit([] { return 2; });
  EXPECT_FALSE(refused.has_value());
  EXPECT_EQ(pool.queued(), 1u);

  release.set_value();
  running.get();
  EXPECT_EQ(queued->get(), 1);
  // With the backlog drained, admission works again.
  auto accepted = pool.try_submit([] { return 3; });
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->get(), 3);
}

TEST(ThreadPool, TrySubmitNeverRefusesOnUnboundedPool) {
  ThreadPool pool(1);  // max_queued = 0: unbounded
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    auto fut = pool.try_submit([i] { return i; });
    ASSERT_TRUE(fut.has_value());
    futures.push_back(std::move(*fut));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  }
}

TEST(ThreadPool, ActiveReportsExecutingTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.active(), 0u);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> started{0};
  auto a = pool.submit([&] {
    ++started;
    gate.wait();
  });
  auto b = pool.submit([&] {
    ++started;
    gate.wait();
  });
  while (started.load() < 2) std::this_thread::yield();
  EXPECT_EQ(pool.active(), 2u);
  release.set_value();
  a.get();
  b.get();
  pool.wait_idle();
  EXPECT_EQ(pool.active(), 0u);
}

TEST(ThreadPool, WaitIdleBlocksUntilAllWorkFinishes) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    }));
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(ThreadPool, ManyProducersOneConsumerPool) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 50; ++i) {
        futures.push_back(
            pool.submit([&sum, p, i] { sum.fetch_add(p * 1000 + i); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  long expected = 0;
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 50; ++i) expected += p * 1000 + i;
  }
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace hmcc
