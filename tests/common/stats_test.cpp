#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace hmcc {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 6.0, 8.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 20.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
  EXPECT_NEAR(a.variance(), 20.0 / 3.0, 1e-12);
}

TEST(Accumulator, MergePreservesMoments) {
  Accumulator a;
  Accumulator b;
  Accumulator all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    a.add(x);
    all.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = i * 0.37;
    b.add(x);
    all.add(x);
  }
  a += b;
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(3.0);
  Accumulator empty;
  a += empty;
  EXPECT_EQ(a.count(), 1u);
  empty += a;
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h({16, 32, 64, 128, 256});
  h.add(16);   // bucket 0 (<=16)
  h.add(17);   // bucket 1
  h.add(256);  // bucket 4
  h.add(300);  // overflow bucket 5
  h.add(1);    // bucket 0
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[4], 1u);
  EXPECT_EQ(h.counts()[5], 1u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(Histogram, WeightedAdd) {
  Histogram h({10});
  h.add(5, 7);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.counts()[0], 7u);
}

TEST(StatsRegistry, CountersAndDump) {
  StatsRegistry reg;
  reg.counter("a.b") += 3;
  reg.counter("a.b") += 2;
  reg.accumulator("lat").add(10.0);
  EXPECT_EQ(reg.counter_or_zero("a.b"), 5u);
  EXPECT_EQ(reg.counter_or_zero("missing"), 0u);
  const std::string dump = reg.to_string();
  EXPECT_NE(dump.find("a.b 5"), std::string::npos);
  EXPECT_NE(dump.find("lat.mean 10"), std::string::npos);
  reg.reset();
  EXPECT_EQ(reg.counter_or_zero("a.b"), 0u);
}

}  // namespace
}  // namespace hmcc
