#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hmcc {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Xoshiro256 rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace hmcc
