#include "common/config.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <string>

namespace hmcc {
namespace {

TEST(Config, SetFromString) {
  Config c;
  EXPECT_TRUE(c.set_from_string("key=value"));
  EXPECT_EQ(c.get_string("key", ""), "value");
  EXPECT_FALSE(c.set_from_string("novalue"));
  EXPECT_FALSE(c.set_from_string("=bad"));
  EXPECT_TRUE(c.set_from_string("empty="));
  EXPECT_EQ(c.get_string("empty", "x"), "");
}

TEST(Config, TypedGetters) {
  Config c;
  c.set("i", "-42");
  c.set("u", "0x10");
  c.set("d", "2.5");
  c.set("b1", "true");
  c.set("b0", "off");
  EXPECT_EQ(c.get_int("i", 0), -42);
  EXPECT_EQ(c.get_uint("u", 0), 16u);
  EXPECT_DOUBLE_EQ(c.get_double("d", 0), 2.5);
  EXPECT_TRUE(c.get_bool("b1", false));
  EXPECT_FALSE(c.get_bool("b0", true));
}

TEST(Config, FallbacksOnMissingOrMalformed) {
  Config c;
  c.set("junk", "12abc");
  EXPECT_EQ(c.get_int("junk", 7), 7);
  EXPECT_EQ(c.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(c.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(c.get_bool("junk", true));
}

TEST(Config, ParseArgs) {
  const char* argv[] = {"prog", "a=1", "not-an-assignment", "b=two"};
  Config c;
  EXPECT_EQ(c.parse_args(4, argv), 2u);
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_string("b", ""), "two");
}

TEST(Config, ParseArgsReportsRejectedTokens) {
  const char* argv[] = {"prog", "a=1", "thread8", "=oops", "b=2"};
  Config c;
  std::vector<std::string> rejected;
  EXPECT_EQ(c.parse_args(5, argv, &rejected), 2u);
  ASSERT_EQ(rejected.size(), 2u);
  EXPECT_EQ(rejected[0], "thread8");
  EXPECT_EQ(rejected[1], "=oops");
}

TEST(Config, GetUintRejectsNegativeInput) {
  Config c;
  c.set("threads", "-1");
  c.set("spaced", "  -3");
  // strtoull would happily wrap "-1" to 2^64-1; the getter must not.
  EXPECT_EQ(c.get_uint("threads", 4), 4u);
  EXPECT_EQ(c.get_uint("spaced", 9), 9u);
  c.set("ok", "17");
  EXPECT_EQ(c.get_uint("ok", 0), 17u);
}

TEST(Config, GettersRejectOutOfRangeValues) {
  Config c;
  c.set("huge_u", "99999999999999999999999999");   // > 2^64-1
  c.set("huge_i", "99999999999999999999999999");   // > 2^63-1
  c.set("tiny_i", "-99999999999999999999999999");  // < -2^63
  c.set("huge_d", "1e999");                        // > DBL_MAX
  EXPECT_EQ(c.get_uint("huge_u", 5), 5u);
  EXPECT_EQ(c.get_int("huge_i", -2), -2);
  EXPECT_EQ(c.get_int("tiny_i", 3), 3);
  EXPECT_DOUBLE_EQ(c.get_double("huge_d", 0.25), 0.25);
}

TEST(Config, GetDoubleIsLocaleIndependent) {
  // Regression: get_double used strtod, whose decimal separator follows
  // LC_NUMERIC. Under a comma-decimal locale (e.g. de_DE) "1.5" parsed as 1
  // with trailing garbage, silently truncating every fractional knob.
  Config c;
  c.set("frac", "1.5");
  c.set("comma", "1,5");
  c.set("exp", "2.5e-1");

  // Whatever the locale, '.' must be the one and only decimal separator.
  const char* old_locale = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = old_locale ? old_locale : "C";
  const bool have_comma_locale =
      std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
      std::setlocale(LC_NUMERIC, "fr_FR.UTF-8") != nullptr;

  EXPECT_DOUBLE_EQ(c.get_double("frac", 0), 1.5);
  EXPECT_DOUBLE_EQ(c.get_double("exp", 0), 0.25);
  // A comma value is malformed in the config grammar regardless of locale.
  EXPECT_DOUBLE_EQ(c.get_double("comma", 9.0), 9.0);

  std::setlocale(LC_NUMERIC, saved.c_str());
  if (!have_comma_locale) {
    GTEST_LOG_(INFO) << "no comma-decimal locale installed; exercised the "
                        "locale-independent path under the C locale only";
  }
}

TEST(Config, GettersRejectEmptyValues) {
  Config c;
  c.set("empty", "");
  EXPECT_EQ(c.get_int("empty", 11), 11);
  EXPECT_EQ(c.get_uint("empty", 12), 12u);
  EXPECT_DOUBLE_EQ(c.get_double("empty", 1.5), 1.5);
}

}  // namespace
}  // namespace hmcc
