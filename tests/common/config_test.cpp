#include "common/config.hpp"

#include <gtest/gtest.h>

namespace hmcc {
namespace {

TEST(Config, SetFromString) {
  Config c;
  EXPECT_TRUE(c.set_from_string("key=value"));
  EXPECT_EQ(c.get_string("key", ""), "value");
  EXPECT_FALSE(c.set_from_string("novalue"));
  EXPECT_FALSE(c.set_from_string("=bad"));
  EXPECT_TRUE(c.set_from_string("empty="));
  EXPECT_EQ(c.get_string("empty", "x"), "");
}

TEST(Config, TypedGetters) {
  Config c;
  c.set("i", "-42");
  c.set("u", "0x10");
  c.set("d", "2.5");
  c.set("b1", "true");
  c.set("b0", "off");
  EXPECT_EQ(c.get_int("i", 0), -42);
  EXPECT_EQ(c.get_uint("u", 0), 16u);
  EXPECT_DOUBLE_EQ(c.get_double("d", 0), 2.5);
  EXPECT_TRUE(c.get_bool("b1", false));
  EXPECT_FALSE(c.get_bool("b0", true));
}

TEST(Config, FallbacksOnMissingOrMalformed) {
  Config c;
  c.set("junk", "12abc");
  EXPECT_EQ(c.get_int("junk", 7), 7);
  EXPECT_EQ(c.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(c.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(c.get_bool("junk", true));
}

TEST(Config, ParseArgs) {
  const char* argv[] = {"prog", "a=1", "not-an-assignment", "b=two"};
  Config c;
  EXPECT_EQ(c.parse_args(4, argv), 2u);
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_string("b", ""), "two");
}

}  // namespace
}  // namespace hmcc
