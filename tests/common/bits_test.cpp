#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace hmcc {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(64), 6u);
  EXPECT_EQ(log2_floor(255), 7u);
  EXPECT_EQ(log2_floor(~0ULL), 63u);
}

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(16), 4u);
  EXPECT_EQ(log2_ceil(17), 5u);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0ULL);
  EXPECT_EQ(low_mask(1), 1ULL);
  EXPECT_EQ(low_mask(8), 0xFFULL);
  EXPECT_EQ(low_mask(52), 0xFFFFFFFFFFFFFULL);
  EXPECT_EQ(low_mask(64), ~0ULL);
}

TEST(Bits, ExtractBits) {
  EXPECT_EQ(bits(0xABCD, 4, 8), 0xBCULL);
  EXPECT_EQ(bits(~0ULL, 60, 4), 0xFULL);
  EXPECT_EQ(bits(0x1234, 0, 4), 4ULL);
}

TEST(Bits, AlignDownUp) {
  EXPECT_EQ(align_down(100, 64), 64ULL);
  EXPECT_EQ(align_down(64, 64), 64ULL);
  EXPECT_EQ(align_up(100, 64), 128ULL);
  EXPECT_EQ(align_up(64, 64), 64ULL);
  EXPECT_EQ(align_up(0, 64), 0ULL);
}

TEST(Bits, RangesOverlap) {
  EXPECT_TRUE(ranges_overlap(0, 10, 5, 10));
  EXPECT_FALSE(ranges_overlap(0, 10, 10, 10));  // adjacency is not overlap
  EXPECT_TRUE(ranges_overlap(5, 1, 0, 10));
  EXPECT_FALSE(ranges_overlap(0, 1, 1, 1));
}

}  // namespace
}  // namespace hmcc
