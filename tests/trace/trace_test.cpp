#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace hmcc::trace {
namespace {

TEST(TraceRecord, Factories) {
  const TraceRecord l = TraceRecord::load(0x100, 4);
  EXPECT_EQ(l.type, ReqType::kLoad);
  EXPECT_EQ(l.size, 4u);
  EXPECT_TRUE(l.is_access());
  EXPECT_FALSE(l.is_fence());
  EXPECT_FALSE(l.is_barrier());
  EXPECT_EQ(l.access_addr(), 0x100u);

  const TraceRecord s = TraceRecord::store(0x200, 8);
  EXPECT_EQ(s.type, ReqType::kStore);

  EXPECT_TRUE(TraceRecord::make_fence().is_fence());
  EXPECT_TRUE(TraceRecord::make_barrier().is_barrier());
  EXPECT_FALSE(TraceRecord::make_fence().is_access());
  EXPECT_FALSE(TraceRecord::make_barrier().is_access());
}

#ifndef NDEBUG
TEST(TraceRecordDeathTest, MarkerAddressIsALogicError) {
  // Markers must never be readable as real accesses: the checked accessors
  // trip an assert in debug builds instead of handing out a phantom addr 0.
  EXPECT_DEATH((void)TraceRecord::make_fence().access_addr(), "marker");
  EXPECT_DEATH((void)TraceRecord::make_barrier().access_size(), "marker");
}
#endif

TEST(TraceProfile, CountsAndFootprint) {
  MultiTrace mt;
  mt.per_core.resize(2);
  mt.per_core[0] = {TraceRecord::load(0, 8), TraceRecord::load(8, 8),
                    TraceRecord::store(64, 8), TraceRecord::make_fence()};
  mt.per_core[1] = {TraceRecord::load(128, 4), TraceRecord::make_barrier()};
  const TraceProfile p = profile(mt);
  EXPECT_EQ(p.records, 6u);
  EXPECT_EQ(p.loads, 3u);
  EXPECT_EQ(p.stores, 1u);
  EXPECT_EQ(p.fences, 1u);
  EXPECT_EQ(p.barriers, 1u);
  EXPECT_EQ(p.bytes, 28u);
  EXPECT_EQ(p.distinct_lines, 3u);  // lines 0, 64, 128
  // One access (addr 8) directly follows its predecessor's end.
  EXPECT_NEAR(p.sequential_fraction, 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(p.store_fraction(), 0.25);
}

TEST(TraceIo, SaveLoadRoundTrip) {
  MultiTrace mt;
  mt.per_core.resize(3);
  mt.per_core[0] = {TraceRecord::load(0xDEADBEEF, 8),
                    TraceRecord::store(0x1234, 2),
                    TraceRecord::make_fence()};
  mt.per_core[1] = {};
  mt.per_core[2] = {TraceRecord::make_barrier(),
                    TraceRecord::load(42, 1)};

  const std::string path = ::testing::TempDir() + "/hmcc_trace_test.bin";
  ASSERT_TRUE(save(mt, path));

  MultiTrace back;
  ASSERT_TRUE(load(back, path));
  ASSERT_EQ(back.per_core.size(), 3u);
  ASSERT_EQ(back.per_core[0].size(), 3u);
  EXPECT_EQ(back.per_core[0][0].addr, 0xDEADBEEFu);
  EXPECT_EQ(back.per_core[0][1].type, ReqType::kStore);
  EXPECT_EQ(back.per_core[0][1].size, 2u);
  EXPECT_TRUE(back.per_core[0][2].is_fence());
  EXPECT_TRUE(back.per_core[1].empty());
  EXPECT_TRUE(back.per_core[2][0].is_barrier());
  EXPECT_EQ(back.per_core[2][1].size, 1u);
}

TEST(TraceIo, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/hmcc_trace_bad.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  MultiTrace mt;
  EXPECT_FALSE(load(mt, path));
  EXPECT_FALSE(load(mt, "/nonexistent/path/xyz.bin"));
}

TEST(MultiTrace, TotalsAcrossCores) {
  MultiTrace mt;
  mt.per_core.resize(4);
  mt.per_core[0].resize(10);
  mt.per_core[3].resize(5);
  EXPECT_EQ(mt.num_cores(), 4u);
  EXPECT_EQ(mt.total_records(), 15u);
}

}  // namespace
}  // namespace hmcc::trace
