#include "trace/codec.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "workloads/workload.hpp"

namespace hmcc::trace {
namespace {

void put_test_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

MultiTrace mixed_trace() {
  MultiTrace mt;
  mt.per_core.resize(3);
  mt.per_core[0] = {TraceRecord::load(0x40000000, 8),
                    TraceRecord::load(0x40000008, 8),
                    TraceRecord::load(0x40000010, 8),
                    TraceRecord::store(0x40000010, 8),
                    TraceRecord::make_fence(),
                    TraceRecord::load(0x1234, 4)};
  mt.per_core[1] = {};
  mt.per_core[2] = {TraceRecord::make_barrier(), TraceRecord::make_barrier(),
                    TraceRecord::load(0xDEADBEEF, 16),
                    TraceRecord::load(0x10, 16),  // large negative delta
                    TraceRecord::store(0xFFFFFFFFFFFFFFF0ull, 1)};
  return mt;
}

void expect_equal(const MultiTrace& a, const MultiTrace& b) {
  ASSERT_EQ(a.per_core.size(), b.per_core.size());
  for (std::size_t c = 0; c < a.per_core.size(); ++c) {
    ASSERT_EQ(a.per_core[c].size(), b.per_core[c].size()) << "core " << c;
    for (std::size_t i = 0; i < a.per_core[c].size(); ++i) {
      EXPECT_TRUE(a.per_core[c][i] == b.per_core[c][i])
          << "core " << c << " record " << i;
    }
  }
}

TEST(Codec, RoundTripMixedRecords) {
  const MultiTrace mt = mixed_trace();
  const auto bytes = encode(mt);
  MultiTrace back;
  const CodecResult res = decode(bytes, back);
  ASSERT_TRUE(res.ok()) << res.detail;
  expect_equal(mt, back);
}

TEST(Codec, EncodeIsDeterministicAndCompact) {
  const MultiTrace mt = mixed_trace();
  const auto a = encode(mt);
  const auto b = encode(mt);
  EXPECT_EQ(a, b);
  // Delta + run-length coding must beat the 16-byte-per-record flat layout.
  EXPECT_LT(a.size(), mt.total_records() * 16);
}

TEST(Codec, RoundTripEveryGenerator) {
  workloads::WorkloadParams p;
  p.num_cores = 4;
  p.accesses_per_core = 600;
  for (const std::string& name : workloads::workload_names()) {
    const MultiTrace mt = workloads::make_workload(name)->generate(p);
    MultiTrace back;
    const CodecResult res = decode(encode(mt), back);
    ASSERT_TRUE(res.ok()) << name << ": " << res.detail;
    expect_equal(mt, back);
    // Re-encoding the decoded trace must be byte-identical (stable corpus).
    EXPECT_EQ(encode(back), encode(mt)) << name;
  }
}

TEST(Codec, FileRoundTripAndAtomicWrite) {
  const MultiTrace mt = mixed_trace();
  const std::string path = ::testing::TempDir() + "/codec_rt.hmct";
  ASSERT_TRUE(write_file(mt, path).ok());
  // The temp staging file must not survive the rename.
  FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  MultiTrace back;
  const CodecResult res = read_file(back, path);
  ASSERT_TRUE(res.ok()) << res.detail;
  expect_equal(mt, back);
}

TEST(Codec, ReadsLegacyV1Files) {
  // Files written by the original trace::save() must stay replayable.
  MultiTrace mt;
  mt.per_core.resize(2);
  mt.per_core[0] = {TraceRecord::load(0x100, 8), TraceRecord::make_fence()};
  mt.per_core[1] = {TraceRecord::make_barrier(), TraceRecord::store(0x40, 2)};
  const std::string path = ::testing::TempDir() + "/codec_v1.bin";
  ASSERT_TRUE(save(mt, path));
  MultiTrace back;
  const CodecResult res = read_file(back, path);
  ASSERT_TRUE(res.ok()) << res.detail;
  expect_equal(mt, back);
}

TEST(Codec, RejectsBadMagic) {
  const std::vector<std::uint8_t> bytes = {'n', 'o', 'p', 'e', 2, 0, 0, 0};
  MultiTrace out;
  EXPECT_EQ(decode(bytes, out).status, CodecStatus::kBadMagic);
  EXPECT_TRUE(out.per_core.empty());
}

TEST(Codec, RejectsWrongVersion) {
  std::vector<std::uint8_t> bytes = encode(MultiTrace{});
  bytes[4] = 99;  // version field
  MultiTrace out;
  const CodecResult res = decode(bytes, out);
  EXPECT_EQ(res.status, CodecStatus::kBadVersion);
  EXPECT_NE(res.detail.find("99"), std::string::npos);
}

TEST(Codec, RejectsTruncationAtEveryPrefix) {
  // Chopping the buffer anywhere must produce a named error, never UB.
  const auto bytes = encode(mixed_trace());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    MultiTrace out;
    const CodecResult res = decode(bytes.data(), len, out);
    EXPECT_FALSE(res.ok()) << "prefix " << len;
    EXPECT_TRUE(out.per_core.empty()) << "prefix " << len;
  }
}

TEST(Codec, RejectsAbsurdRecordCount) {
  // Header claiming ~10^15 records in a 6-byte body.
  std::vector<std::uint8_t> bytes;
  bytes = {0x54, 0x43, 0x4D, 0x48, 2, 0, 0, 0};  // magic + v2
  bytes.push_back(1);  // one stream
  for (int i = 0; i < 7; ++i) bytes.push_back(0xFF);  // huge varint count
  bytes.push_back(0x01);
  MultiTrace out;
  EXPECT_EQ(decode(bytes, out).status, CodecStatus::kAbsurdCount);
}

TEST(Codec, RejectsTooManyStreams) {
  std::vector<std::uint8_t> bytes = {0x54, 0x43, 0x4D, 0x48, 2, 0, 0, 0};
  put_test_varint(bytes, kMaxStreams + 1);
  MultiTrace out;
  EXPECT_EQ(decode(bytes, out).status, CodecStatus::kTooManyCores);
}

TEST(Codec, RejectsVarintOverflow) {
  std::vector<std::uint8_t> bytes = {0x54, 0x43, 0x4D, 0x48, 2, 0, 0, 0};
  for (int i = 0; i < 10; ++i) bytes.push_back(0xFF);  // never-ending varint
  MultiTrace out;
  EXPECT_EQ(decode(bytes, out).status, CodecStatus::kVarintOverflow);
}

TEST(Codec, RejectsReservedTagBitsAndBadKind) {
  auto make = [](std::uint8_t tag) {
    std::vector<std::uint8_t> bytes = {0x54, 0x43, 0x4D, 0x48, 2, 0, 0, 0};
    bytes.push_back(1);  // one stream
    bytes.push_back(1);  // one record
    bytes.push_back(tag);
    bytes.push_back(0);  // would-be delta
    return bytes;
  };
  MultiTrace out;
  EXPECT_EQ(decode(make(0x80), out).status, CodecStatus::kBadRecord);
  EXPECT_EQ(decode(make(0x03), out).status, CodecStatus::kBadRecord);
  // Marker carrying the store bit: markers have no access payload.
  EXPECT_EQ(decode(make(0x01 | 0x04), out).status, CodecStatus::kBadRecord);
}

TEST(Codec, RejectsRunExceedingDeclaredCount) {
  std::vector<std::uint8_t> bytes = {0x54, 0x43, 0x4D, 0x48, 2, 0, 0, 0};
  bytes.push_back(1);     // one stream
  bytes.push_back(2);     // two records declared
  bytes.push_back(0x12);  // barrier group with run length
  bytes.push_back(100);   // run of 100 > declared 2
  MultiTrace out;
  EXPECT_EQ(decode(bytes, out).status, CodecStatus::kBadRecord);
}

TEST(Codec, RejectsTrailingGarbage) {
  auto bytes = encode(mixed_trace());
  bytes.push_back(0xAB);
  MultiTrace out;
  EXPECT_EQ(decode(bytes, out).status, CodecStatus::kBadRecord);
}

TEST(Codec, RejectsV1CountBeyondFileSize) {
  MultiTrace mt;
  mt.per_core.resize(1);
  mt.per_core[0] = {TraceRecord::load(0x100, 8)};
  const std::string path = ::testing::TempDir() + "/codec_v1_bad.bin";
  ASSERT_TRUE(save(mt, path));
  // Corrupt the per-stream count (offset 16) to a huge value.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 16, SEEK_SET);
  const std::uint64_t huge = ~0ULL;
  std::fwrite(&huge, sizeof huge, 1, f);
  std::fclose(f);
  MultiTrace out;
  EXPECT_EQ(read_file(out, path).status, CodecStatus::kAbsurdCount);
}

TEST(Codec, MissingFileIsIoError) {
  MultiTrace out;
  EXPECT_EQ(read_file(out, "/nonexistent/dir/x.hmct").status,
            CodecStatus::kIoError);
}

TEST(Codec, StreamingDecodeMatchesSlurpAtEveryChunkSize) {
  // read_file streams through a bounded window; any chunk size — including
  // ones far smaller than a record group — must produce the same trace as
  // the in-memory decode of the same bytes.
  workloads::WorkloadParams p;
  p.num_cores = 4;
  p.accesses_per_core = 2000;
  const MultiTrace mt = workloads::make_workload("sg")->generate(p);
  const auto bytes = encode(mt);
  const std::string path = ::testing::TempDir() + "/codec_stream.hmct";
  ASSERT_TRUE(write_file(mt, path).ok());
  ASSERT_GT(bytes.size(), 4096u);  // the trace must actually span chunks
  for (const std::size_t chunk : {std::size_t{16}, std::size_t{17},
                                  std::size_t{1024}, bytes.size() * 2}) {
    MultiTrace back;
    const CodecResult res = read_file(back, path, chunk);
    ASSERT_TRUE(res.ok()) << "chunk " << chunk << ": " << res.detail;
    expect_equal(mt, back);
  }
}

TEST(Codec, StreamingReadsLegacyV1InTinyChunks) {
  MultiTrace mt;
  mt.per_core.resize(2);
  mt.per_core[0] = {TraceRecord::load(0x100, 8), TraceRecord::make_fence()};
  mt.per_core[1] = {TraceRecord::make_barrier(), TraceRecord::store(0x40, 2)};
  const std::string path = ::testing::TempDir() + "/codec_v1_stream.bin";
  ASSERT_TRUE(save(mt, path));
  MultiTrace back;
  const CodecResult res = read_file(back, path, 16);
  ASSERT_TRUE(res.ok()) << res.detail;
  expect_equal(mt, back);
}

TEST(Codec, StreamingPreservesEveryErrorDetail) {
  // For each corruption, the streamed decode (tiny window) must report the
  // exact status AND detail string the in-memory decode reports.
  auto truncated = encode(mixed_trace());
  truncated.resize(truncated.size() - 3);
  auto trailing = encode(mixed_trace());
  trailing.push_back(0xAB);
  std::vector<std::uint8_t> too_many = {0x54, 0x43, 0x4D, 0x48,
                                        0x02, 0x00, 0x00, 0x00};
  put_test_varint(too_many, kMaxStreams + 1);
  std::vector<std::uint8_t> bad_magic = {1, 2, 3, 4, 5, 6, 7, 8};

  int n = 0;
  for (const auto* bytes : {&truncated, &trailing, &too_many, &bad_magic}) {
    const std::string path = ::testing::TempDir() + "/codec_err_" +
                             std::to_string(n++) + ".hmct";
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes->data(), 1, bytes->size(), f), bytes->size());
    std::fclose(f);

    MultiTrace mem_out;
    const CodecResult mem = decode(*bytes, mem_out);
    MultiTrace file_out;
    const CodecResult file = read_file(file_out, path, 16);
    EXPECT_EQ(file.status, mem.status) << path;
    EXPECT_EQ(file.detail, mem.detail) << path;
    EXPECT_FALSE(file.ok());
    EXPECT_TRUE(file_out.per_core.empty());
  }
}

TEST(Codec, StatusStringsAreStable) {
  EXPECT_STREQ(to_string(CodecStatus::kOk), "ok");
  EXPECT_STREQ(to_string(CodecStatus::kBadMagic), "bad magic");
  EXPECT_STREQ(to_string(CodecStatus::kVarintOverflow), "varint overflow");
}

}  // namespace
}  // namespace hmcc::trace
