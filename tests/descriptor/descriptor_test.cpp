// The declarative descriptor layer: strict scalar parsing, StatSet
// publish/sample semantics, and the two knob tables (platform + bench) that
// feed overlay_config(), make_env(), and the daemon's knob metadata.
//
// The load-bearing properties:
//  * every knob's advertised default round-trips through its own
//    apply()/read() pair (CLI -> config -> CLI is the identity on defaults);
//  * out-of-bounds and malformed values are REJECTED with a message, never
//    silently replaced by a fallback;
//  * the suite's served knob metadata is exactly the two tables' metadata,
//    so the parser and the advertisement cannot drift.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/descriptor.hpp"
#include "obs/metrics.hpp"
#include "suite/registry.hpp"
#include "system/config_bridge.hpp"
#include "system/runner.hpp"

namespace hmcc {
namespace {

// --- Strict scalar parsers -------------------------------------------------

TEST(DescriptorParse, UIntAcceptsPlainDecimal) {
  const auto p = desc::parse_uint("42", 0, 100);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.value, 42u);
}

TEST(DescriptorParse, UIntRejectsMalformedInput) {
  for (const char* bad : {"", "abc", "4x", " 4", "4 ", "-1", "+4", "0x10"}) {
    EXPECT_FALSE(desc::parse_uint(bad, 0, 100).ok) << bad;
    EXPECT_FALSE(desc::parse_uint(bad, 0, 100).error.empty()) << bad;
  }
}

TEST(DescriptorParse, UIntEnforcesBounds) {
  EXPECT_TRUE(desc::parse_uint("2", 2, 8).ok);
  EXPECT_TRUE(desc::parse_uint("8", 2, 8).ok);
  EXPECT_FALSE(desc::parse_uint("1", 2, 8).ok);
  EXPECT_FALSE(desc::parse_uint("9", 2, 8).ok);
  const auto p = desc::parse_uint("9", 2, 8);
  EXPECT_NE(p.error.find("[2, 8]"), std::string::npos) << p.error;
}

TEST(DescriptorParse, BoolAcceptsConfigSpellings) {
  for (const char* yes : {"1", "true", "yes", "on"}) {
    const auto p = desc::parse_bool(yes);
    ASSERT_TRUE(p.ok) << yes;
    EXPECT_TRUE(p.value) << yes;
  }
  for (const char* no : {"0", "false", "no", "off"}) {
    const auto p = desc::parse_bool(no);
    ASSERT_TRUE(p.ok) << no;
    EXPECT_FALSE(p.value) << no;
  }
  EXPECT_FALSE(desc::parse_bool("maybe").ok);
  EXPECT_FALSE(desc::parse_bool("").ok);
}

// --- StatSet ---------------------------------------------------------------

TEST(StatSet, PublishesEveryKind) {
  std::uint64_t hits = 7;
  double fill = 0.25;
  desc::StatSet set;
  set.counter("t_hits_total", "hits", [&] { return hits; })
      .gauge("t_fill", "fill", [&] { return fill; })
      .histogram("t_sizes", "sizes", {10.0, 20.0},
                 [] {
                   return desc::HistSample{{10.0, 3}, {20.0, 2}};
                 });
  obs::MetricsRegistry reg;
  set.publish(reg);
  EXPECT_EQ(reg.counter_value("t_hits_total"), 7u);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("t_fill 0.25"), std::string::npos);
  EXPECT_NE(text.find("t_sizes_count 5"), std::string::npos);
  EXPECT_NE(text.find("t_sizes_sum 70"), std::string::npos);
}

TEST(StatSet, SampleFeedsGaugeAndHistogram) {
  double occupancy = 3.0;
  desc::StatSet set;
  set.sampled_gauge("t_occ", "occupancy", {2.0, 8.0},
                    [&] { return occupancy; });
  set.gauge("t_plain", "not sampled", [] { return 1.0; });

  obs::MetricsRegistry reg;
  EXPECT_EQ(set.sample(reg), 1u);  // the plain gauge is not sampled
  occupancy = 9.0;
  EXPECT_EQ(set.sample(reg), 1u);

  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("t_occ 9"), std::string::npos);  // last sampled value
  EXPECT_NE(text.find("t_occ_samples_count 2"), std::string::npos);
  EXPECT_NE(text.find("t_occ_samples_bucket{le=\"8\"} 1"),
            std::string::npos);
  EXPECT_EQ(text.find("t_plain_samples"), std::string::npos);
}

TEST(StatSet, ExtendConcatenatesInOrder) {
  desc::StatSet a;
  a.counter("t_a_total", "a", [] { return std::uint64_t{1}; });
  desc::StatSet b;
  b.counter("t_b_total", "b", [] { return std::uint64_t{2}; });
  a.extend(std::move(b));
  ASSERT_EQ(a.entries().size(), 2u);
  EXPECT_EQ(a.entries()[0].name, "t_a_total");
  EXPECT_EQ(a.entries()[1].name, "t_b_total");
}

// --- Platform knob table ---------------------------------------------------

TEST(PlatformKnobs, DefaultsRoundTripThroughApplyAndRead) {
  for (const auto& k : system::platform_knobs()) {
    if (k.meta.kind == desc::KnobKind::kString) continue;  // "" is a value
    system::SystemConfig cfg = system::paper_system_config();
    const std::string err = k.apply(cfg, k.meta.default_value);
    EXPECT_EQ(err, "") << k.meta.key << "=" << k.meta.default_value;
    EXPECT_EQ(k.read(cfg), k.meta.default_value) << k.meta.key;
  }
}

TEST(PlatformKnobs, UIntKnobsRejectOutOfBoundsAndGarbage) {
  for (const auto& k : system::platform_knobs()) {
    if (k.meta.kind != desc::KnobKind::kUInt) continue;
    system::SystemConfig cfg = system::paper_system_config();
    EXPECT_NE(k.apply(cfg, "notanumber"), "") << k.meta.key;
    if (k.meta.min_value > 0) {
      EXPECT_NE(k.apply(cfg, std::to_string(k.meta.min_value - 1)), "")
          << k.meta.key;
    }
    if (k.meta.max_value != ~0ULL) {
      EXPECT_NE(k.apply(cfg, std::to_string(k.meta.max_value + 1)), "")
          << k.meta.key;
    }
  }
}

TEST(PlatformKnobs, EnumAndBoolKnobsRejectUnknownSpellings) {
  for (const auto& k : system::platform_knobs()) {
    if (k.meta.kind != desc::KnobKind::kEnum &&
        k.meta.kind != desc::KnobKind::kBool) {
      continue;
    }
    system::SystemConfig cfg = system::paper_system_config();
    const std::string err = k.apply(cfg, "warpspeed");
    EXPECT_NE(err, "") << k.meta.key;
  }
}

TEST(PlatformKnobs, ModeAcceptsLegacyFullAlias) {
  system::SystemConfig cfg = system::paper_system_config();
  cfg.mode = system::CoalescerMode::kNone;
  const auto& knobs = system::platform_knobs();
  const auto it =
      std::find_if(knobs.begin(), knobs.end(),
                   [](const auto& k) { return k.meta.key == "mode"; });
  ASSERT_NE(it, knobs.end());
  EXPECT_EQ(it->apply(cfg, "full"), "");
  EXPECT_EQ(cfg.mode, system::CoalescerMode::kFull);
  // The alias is accepted but not advertised: read() yields the canonical
  // spelling, which round-trips.
  EXPECT_EQ(it->read(cfg), "coalescer");
}

TEST(PlatformKnobs, OverlayAppliesNonDefaultsAndReadsThemBack) {
  // bypass is excluded: apply_mode() re-derives the flag set from mode, so
  // bypass= only sticks until the next mode application (historical
  // behavior, kept). llc_mshrs rides along with window: the CRQ-capacity
  // constraint rejects a window wider than the MSHR file.
  const std::vector<std::pair<std::string, std::string>> want = {
      {"cores", "8"},        {"l1_kb", "64"},       {"window", "32"},
      {"llc_mshrs", "32"},   {"mode", "dmc-only"},  {"pipeline", "step"},
      {"closed_page", "0"},  {"vaults", "16"},      {"sample_interval", "2500"},
  };
  Config cli;
  for (const auto& [k, v] : want) cli.set(k, v);
  system::SystemConfig cfg = system::paper_system_config();
  std::vector<std::string> errors;
  ASSERT_TRUE(system::overlay_config(cli, cfg, errors));
  ASSERT_TRUE(errors.empty());

  const auto& knobs = system::platform_knobs();
  for (const auto& kv : want) {
    const std::string& key = kv.first;
    const auto it = std::find_if(
        knobs.begin(), knobs.end(),
        [&key](const auto& k) { return k.meta.key == key; });
    ASSERT_NE(it, knobs.end()) << key;
    EXPECT_EQ(it->read(cfg), kv.second) << key;
  }
}

TEST(PlatformKnobs, OverlayCollectsOneErrorPerBadKnob) {
  Config cli;
  cli.set("cores", "abc");
  cli.set("vaults", "0");
  cli.set("mode", "warpspeed");
  system::SystemConfig cfg = system::paper_system_config();
  std::vector<std::string> errors;
  EXPECT_FALSE(system::overlay_config(cli, cfg, errors));
  ASSERT_EQ(errors.size(), 3u);
  for (const char* key : {"cores", "vaults", "mode"}) {
    EXPECT_TRUE(std::any_of(errors.begin(), errors.end(),
                            [key](const std::string& e) {
                              return e.rfind(key, 0) == 0;
                            }))
        << key;
  }
}

TEST(PlatformKnobs, EmptyEnumValueKeepsCurrentSetting) {
  Config cli;
  cli.set("mode", "");
  cli.set("pipeline", "");
  system::SystemConfig cfg = system::paper_system_config();
  const system::CoalescerMode before = cfg.mode;
  std::vector<std::string> errors;
  EXPECT_TRUE(system::overlay_config(cli, cfg, errors));
  EXPECT_EQ(cfg.mode, before);
}

TEST(PlatformKnobs, ConfigFromCliThrowsWithEveryProblemListed) {
  Config cli;
  cli.set("cores", "zero");
  cli.set("window", "12");  // in bounds, structurally not a power of two
  try {
    (void)system::config_from_cli(cli);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cores:"), std::string::npos);
    EXPECT_NE(what.find("window:"), std::string::npos);
  }
}

TEST(PlatformKnobs, MetadataMatchesKeysAndCarriesDefaults) {
  const auto& meta = system::platform_knob_metadata();
  const auto& keys = system::platform_cli_keys();
  ASSERT_EQ(meta.size(), keys.size());
  for (std::size_t i = 0; i < meta.size(); ++i) {
    EXPECT_EQ(meta[i].key, keys[i]);
    EXPECT_EQ(meta[i].scope, "platform");
    EXPECT_FALSE(meta[i].help.empty()) << meta[i].key;
    if (meta[i].kind != desc::KnobKind::kString) {
      EXPECT_FALSE(meta[i].default_value.empty()) << meta[i].key;
    }
  }
}

// --- Bench knob table ------------------------------------------------------

TEST(BenchKnobs, TableCoversTheHistoricalKeys) {
  const std::vector<std::string> expected = {
      "accesses", "seed",  "csv",   "threads",
      "warps",    "warp_width", "lanes", "max_outstanding_warps"};
  EXPECT_EQ(bench::bench_cli_keys(), expected);
}

TEST(BenchKnobs, MakeEnvAppliesOverridesAndKeepsDefaultsOnErrors) {
  Config cli;
  cli.set("accesses", "1234");
  cli.set("threads", "notanumber");  // rejected -> default kept (+ warning)
  const bench::BenchEnv env = bench::make_env(cli, "figXX", 500);
  EXPECT_EQ(env.params.accesses_per_core, 1234u);
  EXPECT_EQ(env.threads, 0u);
  EXPECT_EQ(env.csv_path, "figXX.csv");
}

// --- Suite metadata --------------------------------------------------------

TEST(SuiteKnobInfo, IsGeneratedFromBothTables) {
  const auto& info = bench::suite_knob_info();
  const auto& bench_meta = bench::bench_knob_metadata();
  const auto& platform_meta = system::platform_knob_metadata();
  ASSERT_EQ(info.size(), bench_meta.size() + platform_meta.size());
  for (std::size_t i = 0; i < bench_meta.size(); ++i) {
    EXPECT_EQ(info[i].name, bench_meta[i].key);
    EXPECT_EQ(info[i].kind, desc::to_string(bench_meta[i].kind));
    EXPECT_EQ(info[i].doc, bench_meta[i].help);
  }
  for (std::size_t i = 0; i < platform_meta.size(); ++i) {
    const auto& got = info[bench_meta.size() + i];
    EXPECT_EQ(got.name, platform_meta[i].key);
    EXPECT_EQ(got.kind, desc::to_string(platform_meta[i].kind));
    EXPECT_EQ(got.scope, "platform");
  }
}

TEST(SuiteKnobInfo, AdvertisesWarpAndTraceIoKnobs) {
  // Daemon jobs can shape the warp front-end and replay shipped .hmct
  // corpora; the served metadata must advertise all six knobs.
  const auto& info = bench::suite_knob_info();
  auto has = [&info](const char* name, const char* scope) {
    return std::any_of(info.begin(), info.end(), [&](const auto& k) {
      return k.name == name && k.scope == scope;
    });
  };
  EXPECT_TRUE(has("warps", "bench"));
  EXPECT_TRUE(has("warp_width", "bench"));
  EXPECT_TRUE(has("lanes", "bench"));
  EXPECT_TRUE(has("max_outstanding_warps", "bench"));
  EXPECT_TRUE(has("trace_record", "platform"));
  EXPECT_TRUE(has("trace_replay", "platform"));
}

TEST(SuiteKnobInfo, AdvertisesTheSampleIntervalKnob) {
  const auto& info = bench::suite_knob_info();
  EXPECT_TRUE(std::any_of(info.begin(), info.end(), [](const auto& k) {
    return k.name == "sample_interval" && k.scope == "platform";
  }));
}

// --- Registry vs run report parity ----------------------------------------

TEST(DescriptorParity, SystemStatDescriptorsMatchTheReport) {
  system::SystemConfig cfg = system::paper_system_config();
  cfg.hierarchy.num_cores = 2;
  cfg.obs.metrics = true;
  workloads::WorkloadParams p;
  p.accesses_per_core = 1500;
  p.seed = 11;
  const auto r = system::run_workload("hpcg", cfg, p);
  const std::string& text = r.metrics_text;
  auto value_of = [&text](const std::string& series) {
    // Leading newline so the needle can't land on the "# HELP series ..."
    // comment of the same family.
    const std::string needle = "\n" + series + " ";
    const std::size_t pos = text.find(needle);
    EXPECT_NE(pos, std::string::npos) << series;
    if (pos == std::string::npos) return 0.0;
    return std::stod(text.substr(pos + needle.size()));
  };
  EXPECT_EQ(value_of("hmcc_system_cpu_accesses_total"),
            static_cast<double>(r.report.cpu_accesses));
  EXPECT_EQ(value_of("hmcc_system_llc_misses_total"),
            static_cast<double>(r.report.llc_misses));
  EXPECT_EQ(value_of("hmcc_coalescer_memory_requests_total"),
            static_cast<double>(r.report.memory_requests));
  EXPECT_EQ(value_of("hmcc_hmc_transferred_bytes_total"),
            static_cast<double>(r.report.hmc.transferred_bytes));
  EXPECT_EQ(value_of("hmcc_system_runtime_cycles"),
            static_cast<double>(r.report.runtime));
}

}  // namespace
}  // namespace hmcc
