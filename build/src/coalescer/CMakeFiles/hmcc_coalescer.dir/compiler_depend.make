# Empty compiler generated dependencies file for hmcc_coalescer.
# This may be replaced when dependencies are built.
