file(REMOVE_RECURSE
  "libhmcc_coalescer.a"
)
