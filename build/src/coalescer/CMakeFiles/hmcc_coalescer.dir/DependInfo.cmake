
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coalescer/coalescer.cpp" "src/coalescer/CMakeFiles/hmcc_coalescer.dir/coalescer.cpp.o" "gcc" "src/coalescer/CMakeFiles/hmcc_coalescer.dir/coalescer.cpp.o.d"
  "/root/repo/src/coalescer/dmc_unit.cpp" "src/coalescer/CMakeFiles/hmcc_coalescer.dir/dmc_unit.cpp.o" "gcc" "src/coalescer/CMakeFiles/hmcc_coalescer.dir/dmc_unit.cpp.o.d"
  "/root/repo/src/coalescer/dynamic_mshr.cpp" "src/coalescer/CMakeFiles/hmcc_coalescer.dir/dynamic_mshr.cpp.o" "gcc" "src/coalescer/CMakeFiles/hmcc_coalescer.dir/dynamic_mshr.cpp.o.d"
  "/root/repo/src/coalescer/pipeline.cpp" "src/coalescer/CMakeFiles/hmcc_coalescer.dir/pipeline.cpp.o" "gcc" "src/coalescer/CMakeFiles/hmcc_coalescer.dir/pipeline.cpp.o.d"
  "/root/repo/src/coalescer/sorting_network.cpp" "src/coalescer/CMakeFiles/hmcc_coalescer.dir/sorting_network.cpp.o" "gcc" "src/coalescer/CMakeFiles/hmcc_coalescer.dir/sorting_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hmcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hmc/CMakeFiles/hmcc_hmc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
