file(REMOVE_RECURSE
  "CMakeFiles/hmcc_coalescer.dir/coalescer.cpp.o"
  "CMakeFiles/hmcc_coalescer.dir/coalescer.cpp.o.d"
  "CMakeFiles/hmcc_coalescer.dir/dmc_unit.cpp.o"
  "CMakeFiles/hmcc_coalescer.dir/dmc_unit.cpp.o.d"
  "CMakeFiles/hmcc_coalescer.dir/dynamic_mshr.cpp.o"
  "CMakeFiles/hmcc_coalescer.dir/dynamic_mshr.cpp.o.d"
  "CMakeFiles/hmcc_coalescer.dir/pipeline.cpp.o"
  "CMakeFiles/hmcc_coalescer.dir/pipeline.cpp.o.d"
  "CMakeFiles/hmcc_coalescer.dir/sorting_network.cpp.o"
  "CMakeFiles/hmcc_coalescer.dir/sorting_network.cpp.o.d"
  "libhmcc_coalescer.a"
  "libhmcc_coalescer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcc_coalescer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
