# Empty compiler generated dependencies file for hmcc_sim.
# This may be replaced when dependencies are built.
