file(REMOVE_RECURSE
  "CMakeFiles/hmcc_sim.dir/kernel.cpp.o"
  "CMakeFiles/hmcc_sim.dir/kernel.cpp.o.d"
  "libhmcc_sim.a"
  "libhmcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
