file(REMOVE_RECURSE
  "libhmcc_sim.a"
)
