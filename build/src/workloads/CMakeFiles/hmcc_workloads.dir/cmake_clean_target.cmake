file(REMOVE_RECURSE
  "libhmcc_workloads.a"
)
