file(REMOVE_RECURSE
  "CMakeFiles/hmcc_workloads.dir/bots.cpp.o"
  "CMakeFiles/hmcc_workloads.dir/bots.cpp.o.d"
  "CMakeFiles/hmcc_workloads.dir/kernels.cpp.o"
  "CMakeFiles/hmcc_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/hmcc_workloads.dir/nas.cpp.o"
  "CMakeFiles/hmcc_workloads.dir/nas.cpp.o.d"
  "CMakeFiles/hmcc_workloads.dir/sparse.cpp.o"
  "CMakeFiles/hmcc_workloads.dir/sparse.cpp.o.d"
  "CMakeFiles/hmcc_workloads.dir/workload.cpp.o"
  "CMakeFiles/hmcc_workloads.dir/workload.cpp.o.d"
  "libhmcc_workloads.a"
  "libhmcc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
