
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bots.cpp" "src/workloads/CMakeFiles/hmcc_workloads.dir/bots.cpp.o" "gcc" "src/workloads/CMakeFiles/hmcc_workloads.dir/bots.cpp.o.d"
  "/root/repo/src/workloads/kernels.cpp" "src/workloads/CMakeFiles/hmcc_workloads.dir/kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/hmcc_workloads.dir/kernels.cpp.o.d"
  "/root/repo/src/workloads/nas.cpp" "src/workloads/CMakeFiles/hmcc_workloads.dir/nas.cpp.o" "gcc" "src/workloads/CMakeFiles/hmcc_workloads.dir/nas.cpp.o.d"
  "/root/repo/src/workloads/sparse.cpp" "src/workloads/CMakeFiles/hmcc_workloads.dir/sparse.cpp.o" "gcc" "src/workloads/CMakeFiles/hmcc_workloads.dir/sparse.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/hmcc_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/hmcc_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hmcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hmcc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
