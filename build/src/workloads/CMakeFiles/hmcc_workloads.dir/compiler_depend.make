# Empty compiler generated dependencies file for hmcc_workloads.
# This may be replaced when dependencies are built.
