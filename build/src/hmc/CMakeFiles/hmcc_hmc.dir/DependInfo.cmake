
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmc/address_map.cpp" "src/hmc/CMakeFiles/hmcc_hmc.dir/address_map.cpp.o" "gcc" "src/hmc/CMakeFiles/hmcc_hmc.dir/address_map.cpp.o.d"
  "/root/repo/src/hmc/bank.cpp" "src/hmc/CMakeFiles/hmcc_hmc.dir/bank.cpp.o" "gcc" "src/hmc/CMakeFiles/hmcc_hmc.dir/bank.cpp.o.d"
  "/root/repo/src/hmc/device.cpp" "src/hmc/CMakeFiles/hmcc_hmc.dir/device.cpp.o" "gcc" "src/hmc/CMakeFiles/hmcc_hmc.dir/device.cpp.o.d"
  "/root/repo/src/hmc/link.cpp" "src/hmc/CMakeFiles/hmcc_hmc.dir/link.cpp.o" "gcc" "src/hmc/CMakeFiles/hmcc_hmc.dir/link.cpp.o.d"
  "/root/repo/src/hmc/packet.cpp" "src/hmc/CMakeFiles/hmcc_hmc.dir/packet.cpp.o" "gcc" "src/hmc/CMakeFiles/hmcc_hmc.dir/packet.cpp.o.d"
  "/root/repo/src/hmc/vault.cpp" "src/hmc/CMakeFiles/hmcc_hmc.dir/vault.cpp.o" "gcc" "src/hmc/CMakeFiles/hmcc_hmc.dir/vault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hmcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmcc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
