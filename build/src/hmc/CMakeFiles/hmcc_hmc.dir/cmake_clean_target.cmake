file(REMOVE_RECURSE
  "libhmcc_hmc.a"
)
