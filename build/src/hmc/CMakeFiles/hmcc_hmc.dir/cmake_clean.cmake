file(REMOVE_RECURSE
  "CMakeFiles/hmcc_hmc.dir/address_map.cpp.o"
  "CMakeFiles/hmcc_hmc.dir/address_map.cpp.o.d"
  "CMakeFiles/hmcc_hmc.dir/bank.cpp.o"
  "CMakeFiles/hmcc_hmc.dir/bank.cpp.o.d"
  "CMakeFiles/hmcc_hmc.dir/device.cpp.o"
  "CMakeFiles/hmcc_hmc.dir/device.cpp.o.d"
  "CMakeFiles/hmcc_hmc.dir/link.cpp.o"
  "CMakeFiles/hmcc_hmc.dir/link.cpp.o.d"
  "CMakeFiles/hmcc_hmc.dir/packet.cpp.o"
  "CMakeFiles/hmcc_hmc.dir/packet.cpp.o.d"
  "CMakeFiles/hmcc_hmc.dir/vault.cpp.o"
  "CMakeFiles/hmcc_hmc.dir/vault.cpp.o.d"
  "libhmcc_hmc.a"
  "libhmcc_hmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcc_hmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
