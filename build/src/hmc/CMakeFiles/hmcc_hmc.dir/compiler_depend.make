# Empty compiler generated dependencies file for hmcc_hmc.
# This may be replaced when dependencies are built.
