file(REMOVE_RECURSE
  "libhmcc_riscv.a"
)
