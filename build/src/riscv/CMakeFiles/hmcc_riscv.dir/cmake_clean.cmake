file(REMOVE_RECURSE
  "CMakeFiles/hmcc_riscv.dir/assembler.cpp.o"
  "CMakeFiles/hmcc_riscv.dir/assembler.cpp.o.d"
  "CMakeFiles/hmcc_riscv.dir/cpu.cpp.o"
  "CMakeFiles/hmcc_riscv.dir/cpu.cpp.o.d"
  "CMakeFiles/hmcc_riscv.dir/isa.cpp.o"
  "CMakeFiles/hmcc_riscv.dir/isa.cpp.o.d"
  "libhmcc_riscv.a"
  "libhmcc_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcc_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
