
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/riscv/assembler.cpp" "src/riscv/CMakeFiles/hmcc_riscv.dir/assembler.cpp.o" "gcc" "src/riscv/CMakeFiles/hmcc_riscv.dir/assembler.cpp.o.d"
  "/root/repo/src/riscv/cpu.cpp" "src/riscv/CMakeFiles/hmcc_riscv.dir/cpu.cpp.o" "gcc" "src/riscv/CMakeFiles/hmcc_riscv.dir/cpu.cpp.o.d"
  "/root/repo/src/riscv/isa.cpp" "src/riscv/CMakeFiles/hmcc_riscv.dir/isa.cpp.o" "gcc" "src/riscv/CMakeFiles/hmcc_riscv.dir/isa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hmcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hmcc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
