# Empty dependencies file for hmcc_riscv.
# This may be replaced when dependencies are built.
