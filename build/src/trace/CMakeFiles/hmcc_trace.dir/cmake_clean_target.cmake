file(REMOVE_RECURSE
  "libhmcc_trace.a"
)
