file(REMOVE_RECURSE
  "CMakeFiles/hmcc_trace.dir/trace.cpp.o"
  "CMakeFiles/hmcc_trace.dir/trace.cpp.o.d"
  "libhmcc_trace.a"
  "libhmcc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
