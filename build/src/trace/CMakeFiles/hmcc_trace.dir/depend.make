# Empty dependencies file for hmcc_trace.
# This may be replaced when dependencies are built.
