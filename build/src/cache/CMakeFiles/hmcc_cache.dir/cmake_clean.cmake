file(REMOVE_RECURSE
  "CMakeFiles/hmcc_cache.dir/cache.cpp.o"
  "CMakeFiles/hmcc_cache.dir/cache.cpp.o.d"
  "CMakeFiles/hmcc_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/hmcc_cache.dir/hierarchy.cpp.o.d"
  "CMakeFiles/hmcc_cache.dir/mshr.cpp.o"
  "CMakeFiles/hmcc_cache.dir/mshr.cpp.o.d"
  "CMakeFiles/hmcc_cache.dir/replacement.cpp.o"
  "CMakeFiles/hmcc_cache.dir/replacement.cpp.o.d"
  "libhmcc_cache.a"
  "libhmcc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
