file(REMOVE_RECURSE
  "libhmcc_cache.a"
)
