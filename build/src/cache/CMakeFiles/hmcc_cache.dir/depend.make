# Empty dependencies file for hmcc_cache.
# This may be replaced when dependencies are built.
