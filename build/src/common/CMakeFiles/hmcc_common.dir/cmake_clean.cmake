file(REMOVE_RECURSE
  "CMakeFiles/hmcc_common.dir/config.cpp.o"
  "CMakeFiles/hmcc_common.dir/config.cpp.o.d"
  "CMakeFiles/hmcc_common.dir/log.cpp.o"
  "CMakeFiles/hmcc_common.dir/log.cpp.o.d"
  "CMakeFiles/hmcc_common.dir/stats.cpp.o"
  "CMakeFiles/hmcc_common.dir/stats.cpp.o.d"
  "CMakeFiles/hmcc_common.dir/table.cpp.o"
  "CMakeFiles/hmcc_common.dir/table.cpp.o.d"
  "libhmcc_common.a"
  "libhmcc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
