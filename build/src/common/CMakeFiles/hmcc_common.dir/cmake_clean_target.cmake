file(REMOVE_RECURSE
  "libhmcc_common.a"
)
