# Empty compiler generated dependencies file for hmcc_common.
# This may be replaced when dependencies are built.
