file(REMOVE_RECURSE
  "CMakeFiles/hmcc_system.dir/config_bridge.cpp.o"
  "CMakeFiles/hmcc_system.dir/config_bridge.cpp.o.d"
  "CMakeFiles/hmcc_system.dir/runner.cpp.o"
  "CMakeFiles/hmcc_system.dir/runner.cpp.o.d"
  "CMakeFiles/hmcc_system.dir/system.cpp.o"
  "CMakeFiles/hmcc_system.dir/system.cpp.o.d"
  "libhmcc_system.a"
  "libhmcc_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcc_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
