# Empty compiler generated dependencies file for hmcc_system.
# This may be replaced when dependencies are built.
