file(REMOVE_RECURSE
  "libhmcc_system.a"
)
