file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_bandwidth_efficiency.dir/bench_fig01_bandwidth_efficiency.cpp.o"
  "CMakeFiles/bench_fig01_bandwidth_efficiency.dir/bench_fig01_bandwidth_efficiency.cpp.o.d"
  "bench_fig01_bandwidth_efficiency"
  "bench_fig01_bandwidth_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_bandwidth_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
