# Empty dependencies file for bench_fig08_coalescing_efficiency.
# This may be replaced when dependencies are built.
