# Empty dependencies file for bench_fig11_bandwidth_saving.
# This may be replaced when dependencies are built.
