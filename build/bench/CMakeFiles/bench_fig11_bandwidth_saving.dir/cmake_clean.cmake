file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_bandwidth_saving.dir/bench_fig11_bandwidth_saving.cpp.o"
  "CMakeFiles/bench_fig11_bandwidth_saving.dir/bench_fig11_bandwidth_saving.cpp.o.d"
  "bench_fig11_bandwidth_saving"
  "bench_fig11_bandwidth_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bandwidth_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
