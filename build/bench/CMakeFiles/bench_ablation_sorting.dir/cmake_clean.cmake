file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sorting.dir/bench_ablation_sorting.cpp.o"
  "CMakeFiles/bench_ablation_sorting.dir/bench_ablation_sorting.cpp.o.d"
  "bench_ablation_sorting"
  "bench_ablation_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
