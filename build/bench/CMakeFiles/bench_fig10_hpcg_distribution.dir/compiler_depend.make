# Empty compiler generated dependencies file for bench_fig10_hpcg_distribution.
# This may be replaced when dependencies are built.
