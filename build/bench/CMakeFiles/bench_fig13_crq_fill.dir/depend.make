# Empty dependencies file for bench_fig13_crq_fill.
# This may be replaced when dependencies are built.
