file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_crq_fill.dir/bench_fig13_crq_fill.cpp.o"
  "CMakeFiles/bench_fig13_crq_fill.dir/bench_fig13_crq_fill.cpp.o.d"
  "bench_fig13_crq_fill"
  "bench_fig13_crq_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_crq_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
