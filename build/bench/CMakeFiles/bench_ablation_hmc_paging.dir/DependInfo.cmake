
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_hmc_paging.cpp" "bench/CMakeFiles/bench_ablation_hmc_paging.dir/bench_ablation_hmc_paging.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_hmc_paging.dir/bench_ablation_hmc_paging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/hmcc_system.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hmcc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/coalescer/CMakeFiles/hmcc_coalescer.dir/DependInfo.cmake"
  "/root/repo/build/src/hmc/CMakeFiles/hmcc_hmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hmcc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hmcc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hmcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
