# Empty dependencies file for bench_ablation_hmc_paging.
# This may be replaced when dependencies are built.
