file(REMOVE_RECURSE
  "CMakeFiles/riscv_scatter_gather.dir/riscv_scatter_gather.cpp.o"
  "CMakeFiles/riscv_scatter_gather.dir/riscv_scatter_gather.cpp.o.d"
  "riscv_scatter_gather"
  "riscv_scatter_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_scatter_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
