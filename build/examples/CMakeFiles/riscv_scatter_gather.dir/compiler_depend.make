# Empty compiler generated dependencies file for riscv_scatter_gather.
# This may be replaced when dependencies are built.
