file(REMOVE_RECURSE
  "CMakeFiles/riscv_stream_triad.dir/riscv_stream_triad.cpp.o"
  "CMakeFiles/riscv_stream_triad.dir/riscv_stream_triad.cpp.o.d"
  "riscv_stream_triad"
  "riscv_stream_triad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_stream_triad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
