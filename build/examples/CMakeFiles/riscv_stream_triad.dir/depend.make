# Empty dependencies file for riscv_stream_triad.
# This may be replaced when dependencies are built.
