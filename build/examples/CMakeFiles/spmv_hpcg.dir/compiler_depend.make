# Empty compiler generated dependencies file for spmv_hpcg.
# This may be replaced when dependencies are built.
