file(REMOVE_RECURSE
  "CMakeFiles/spmv_hpcg.dir/spmv_hpcg.cpp.o"
  "CMakeFiles/spmv_hpcg.dir/spmv_hpcg.cpp.o.d"
  "spmv_hpcg"
  "spmv_hpcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_hpcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
