# Empty dependencies file for graph_ssca2.
# This may be replaced when dependencies are built.
