file(REMOVE_RECURSE
  "CMakeFiles/graph_ssca2.dir/graph_ssca2.cpp.o"
  "CMakeFiles/graph_ssca2.dir/graph_ssca2.cpp.o.d"
  "graph_ssca2"
  "graph_ssca2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_ssca2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
