
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coalescer/coalescer_test.cpp" "tests/CMakeFiles/test_coalescer.dir/coalescer/coalescer_test.cpp.o" "gcc" "tests/CMakeFiles/test_coalescer.dir/coalescer/coalescer_test.cpp.o.d"
  "/root/repo/tests/coalescer/config_sweep_test.cpp" "tests/CMakeFiles/test_coalescer.dir/coalescer/config_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/test_coalescer.dir/coalescer/config_sweep_test.cpp.o.d"
  "/root/repo/tests/coalescer/dmc_unit_test.cpp" "tests/CMakeFiles/test_coalescer.dir/coalescer/dmc_unit_test.cpp.o" "gcc" "tests/CMakeFiles/test_coalescer.dir/coalescer/dmc_unit_test.cpp.o.d"
  "/root/repo/tests/coalescer/dynamic_mshr_test.cpp" "tests/CMakeFiles/test_coalescer.dir/coalescer/dynamic_mshr_test.cpp.o" "gcc" "tests/CMakeFiles/test_coalescer.dir/coalescer/dynamic_mshr_test.cpp.o.d"
  "/root/repo/tests/coalescer/pipeline_test.cpp" "tests/CMakeFiles/test_coalescer.dir/coalescer/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_coalescer.dir/coalescer/pipeline_test.cpp.o.d"
  "/root/repo/tests/coalescer/sort_key_test.cpp" "tests/CMakeFiles/test_coalescer.dir/coalescer/sort_key_test.cpp.o" "gcc" "tests/CMakeFiles/test_coalescer.dir/coalescer/sort_key_test.cpp.o.d"
  "/root/repo/tests/coalescer/sorting_network_test.cpp" "tests/CMakeFiles/test_coalescer.dir/coalescer/sorting_network_test.cpp.o" "gcc" "tests/CMakeFiles/test_coalescer.dir/coalescer/sorting_network_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hmcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hmc/CMakeFiles/hmcc_hmc.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hmcc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/coalescer/CMakeFiles/hmcc_coalescer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
