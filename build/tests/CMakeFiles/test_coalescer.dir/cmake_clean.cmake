file(REMOVE_RECURSE
  "CMakeFiles/test_coalescer.dir/coalescer/coalescer_test.cpp.o"
  "CMakeFiles/test_coalescer.dir/coalescer/coalescer_test.cpp.o.d"
  "CMakeFiles/test_coalescer.dir/coalescer/config_sweep_test.cpp.o"
  "CMakeFiles/test_coalescer.dir/coalescer/config_sweep_test.cpp.o.d"
  "CMakeFiles/test_coalescer.dir/coalescer/dmc_unit_test.cpp.o"
  "CMakeFiles/test_coalescer.dir/coalescer/dmc_unit_test.cpp.o.d"
  "CMakeFiles/test_coalescer.dir/coalescer/dynamic_mshr_test.cpp.o"
  "CMakeFiles/test_coalescer.dir/coalescer/dynamic_mshr_test.cpp.o.d"
  "CMakeFiles/test_coalescer.dir/coalescer/pipeline_test.cpp.o"
  "CMakeFiles/test_coalescer.dir/coalescer/pipeline_test.cpp.o.d"
  "CMakeFiles/test_coalescer.dir/coalescer/sort_key_test.cpp.o"
  "CMakeFiles/test_coalescer.dir/coalescer/sort_key_test.cpp.o.d"
  "CMakeFiles/test_coalescer.dir/coalescer/sorting_network_test.cpp.o"
  "CMakeFiles/test_coalescer.dir/coalescer/sorting_network_test.cpp.o.d"
  "test_coalescer"
  "test_coalescer.pdb"
  "test_coalescer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coalescer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
