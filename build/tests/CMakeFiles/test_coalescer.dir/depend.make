# Empty dependencies file for test_coalescer.
# This may be replaced when dependencies are built.
