file(REMOVE_RECURSE
  "CMakeFiles/test_system.dir/system/config_bridge_test.cpp.o"
  "CMakeFiles/test_system.dir/system/config_bridge_test.cpp.o.d"
  "CMakeFiles/test_system.dir/system/equivalence_test.cpp.o"
  "CMakeFiles/test_system.dir/system/equivalence_test.cpp.o.d"
  "CMakeFiles/test_system.dir/system/golden_test.cpp.o"
  "CMakeFiles/test_system.dir/system/golden_test.cpp.o.d"
  "CMakeFiles/test_system.dir/system/scaling_test.cpp.o"
  "CMakeFiles/test_system.dir/system/scaling_test.cpp.o.d"
  "CMakeFiles/test_system.dir/system/system_test.cpp.o"
  "CMakeFiles/test_system.dir/system/system_test.cpp.o.d"
  "test_system"
  "test_system.pdb"
  "test_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
