file(REMOVE_RECURSE
  "CMakeFiles/test_riscv.dir/riscv/assembler_test.cpp.o"
  "CMakeFiles/test_riscv.dir/riscv/assembler_test.cpp.o.d"
  "CMakeFiles/test_riscv.dir/riscv/atomics_test.cpp.o"
  "CMakeFiles/test_riscv.dir/riscv/atomics_test.cpp.o.d"
  "CMakeFiles/test_riscv.dir/riscv/cpu_test.cpp.o"
  "CMakeFiles/test_riscv.dir/riscv/cpu_test.cpp.o.d"
  "CMakeFiles/test_riscv.dir/riscv/isa_test.cpp.o"
  "CMakeFiles/test_riscv.dir/riscv/isa_test.cpp.o.d"
  "test_riscv"
  "test_riscv.pdb"
  "test_riscv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
