file(REMOVE_RECURSE
  "CMakeFiles/test_hmc.dir/hmc/address_map_test.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/address_map_test.cpp.o.d"
  "CMakeFiles/test_hmc.dir/hmc/bank_test.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/bank_test.cpp.o.d"
  "CMakeFiles/test_hmc.dir/hmc/config_sweep_test.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/config_sweep_test.cpp.o.d"
  "CMakeFiles/test_hmc.dir/hmc/device_test.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/device_test.cpp.o.d"
  "CMakeFiles/test_hmc.dir/hmc/packet_test.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/packet_test.cpp.o.d"
  "CMakeFiles/test_hmc.dir/hmc/vault_link_test.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/vault_link_test.cpp.o.d"
  "test_hmc"
  "test_hmc.pdb"
  "test_hmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
