
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hmc/address_map_test.cpp" "tests/CMakeFiles/test_hmc.dir/hmc/address_map_test.cpp.o" "gcc" "tests/CMakeFiles/test_hmc.dir/hmc/address_map_test.cpp.o.d"
  "/root/repo/tests/hmc/bank_test.cpp" "tests/CMakeFiles/test_hmc.dir/hmc/bank_test.cpp.o" "gcc" "tests/CMakeFiles/test_hmc.dir/hmc/bank_test.cpp.o.d"
  "/root/repo/tests/hmc/config_sweep_test.cpp" "tests/CMakeFiles/test_hmc.dir/hmc/config_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/test_hmc.dir/hmc/config_sweep_test.cpp.o.d"
  "/root/repo/tests/hmc/device_test.cpp" "tests/CMakeFiles/test_hmc.dir/hmc/device_test.cpp.o" "gcc" "tests/CMakeFiles/test_hmc.dir/hmc/device_test.cpp.o.d"
  "/root/repo/tests/hmc/packet_test.cpp" "tests/CMakeFiles/test_hmc.dir/hmc/packet_test.cpp.o" "gcc" "tests/CMakeFiles/test_hmc.dir/hmc/packet_test.cpp.o.d"
  "/root/repo/tests/hmc/vault_link_test.cpp" "tests/CMakeFiles/test_hmc.dir/hmc/vault_link_test.cpp.o" "gcc" "tests/CMakeFiles/test_hmc.dir/hmc/vault_link_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hmcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hmc/CMakeFiles/hmcc_hmc.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hmcc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/coalescer/CMakeFiles/hmcc_coalescer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
